"""Per-shard columnar trial storage with content-addressed keys.

One **shard** holds the per-trial outcome vectors of one Monte-Carlo
work item (a contiguous block of trials of one sweep point), as a NumPy
structured array over the fixed :data:`SHARD_SCHEMA`:

======================= =========== ==========================================
field                   dtype       meaning
======================= =========== ==========================================
``point``               ``uint32``  campaign point index the trial belongs to
``trial``               ``uint32``  trial id *within the point* (global, so a
                                    shard's rows are self-describing)
``time``                ``int64``   stabilization step (valid iff converged)
``converged``           ``bool``    the trial reached a legitimate state
``timed_out``           ``bool``    the trial exhausted its step budget
``hit_terminal``        ``bool``    retired in an illegitimate terminal state
``fault_time``          ``int64``   step the fault fired at (−1: none fired)
``rounds``              ``float64`` completed rounds (NaN unless measured)
======================= =========== ==========================================

The on-disk container is deliberately *not* ``.npz`` (zip archives embed
member timestamps, which would break the campaign tier's byte-identity
guarantee).  A shard file is a pure function of its records and
metadata::

    b"RSHARD01"                magic + format version
    uint64 LE                  metadata length in bytes
    metadata                   canonical JSON (sorted keys, compact)
    uint64 LE                  record count
    payload                    records.tobytes() over SHARD_SCHEMA
    sha256(everything above)   32-byte checksum footer

:func:`decode_shard` re-hashes everything before the footer, so a
truncated, bit-flipped, or foreign file raises
:class:`~repro.errors.StoreCorruptionError` — which
:meth:`ResultStore.load` converts into *quarantine + regenerate*
(the Dolev–Herman stance: the store stabilizes after transient faults
in its own environment instead of crashing the campaign).

Shards are **content-addressed**: :func:`shard_key` hashes a canonical
metadata dict — system signature, sampler signature, legitimacy
signature, trials, step budget, fault plan, and seed — so re-running
the same work item is a cache hit and two stores holding the same
science hold the same files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import struct
from typing import Mapping

import numpy as np

from repro.errors import StoreCorruptionError, StoreError
from repro.store.atomic import atomic_write_bytes

__all__ = [
    "SHARD_SCHEMA",
    "SHARD_MAGIC",
    "ResultStore",
    "decode_shard",
    "encode_shard",
    "fault_signature",
    "legitimacy_signature",
    "read_shard",
    "records_from_arrays",
    "sampler_signature",
    "shard_key",
    "system_cache_key",
    "system_signature",
    "write_shard",
]

#: Fixed per-trial record layout — append-only by design: widening the
#: schema bumps :data:`SHARD_MAGIC`'s version byte instead of mutating
#: the meaning of existing files.
SHARD_SCHEMA = np.dtype(
    [
        ("point", np.uint32),
        ("trial", np.uint32),
        ("time", np.int64),
        ("converged", np.bool_),
        ("timed_out", np.bool_),
        ("hit_terminal", np.bool_),
        ("fault_time", np.int64),
        ("rounds", np.float64),
    ]
)

#: Container magic: format name + version.
SHARD_MAGIC = b"RSHARD01"

_LENGTH = struct.Struct("<Q")
_CHECKSUM_BYTES = 32


# ----------------------------------------------------------------------
# canonical signatures and the content-address key
# ----------------------------------------------------------------------
def _canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as error:
        raise StoreError(
            f"metadata is not canonically JSON-serializable: {error}"
        ) from None


def shard_key(meta: Mapping) -> str:
    """Content address of a shard: sha256 over canonical JSON metadata.

    Key order never matters — two semantically equal dicts hash equally:

    >>> shard_key({"family": "Q1", "seed": 7}) == shard_key(
    ...     {"seed": 7, "family": "Q1"})
    True
    """
    return hashlib.sha256(_canonical_json(dict(meta)).encode()).hexdigest()


def _scalar_attributes(obj) -> dict:
    """The plain-scalar attributes of ``obj`` (private underscores
    stripped), sorted — the JSON-able parameter surface of an algorithm
    or sampler instance.  Float subclasses (e.g. affine coin
    probabilities) serialize by value."""
    params = {}
    for name, value in (getattr(obj, "__dict__", None) or {}).items():
        if isinstance(value, bool):
            params[name.lstrip("_")] = value
        elif isinstance(value, int):
            params[name.lstrip("_")] = int(value)
        elif isinstance(value, float):
            params[name.lstrip("_")] = float(value)
        elif isinstance(value, str):
            params[name.lstrip("_")] = value
    return dict(sorted(params.items()))


def system_signature(system) -> dict:
    """Canonical, process-independent description of a
    :class:`~repro.core.system.System` — stable across runs and hosts
    (type names, parameters, and domain/wiring structure, never object
    identities).

    ``algorithm_params`` (the algorithm instance's scalar attributes —
    ring size, counter modulus, coin biases) and ``topology_sha256``
    (the ordered adjacency lists) make the signature *semantically
    discriminating*: two systems share a signature only when they share
    guarded-command behavior, which is what lets a long-lived process
    (the serving tier) key kernels, compiled tables, and chains by
    signature instead of by object identity.
    """
    domains = [
        [
            [spec.size, list(map(repr, spec.domain))]
            for spec in layout.specs
        ]
        for layout in system.layouts
    ]
    adjacency = [
        list(system.topology.neighbors(process))
        for process in range(system.num_processes)
    ]
    return {
        "algorithm": type(system.algorithm).__name__,
        "algorithm_params": _scalar_attributes(system.algorithm),
        "topology": type(system.topology).__name__,
        "topology_sha256": hashlib.sha256(
            _canonical_json(adjacency).encode()
        ).hexdigest(),
        "processes": int(system.num_processes),
        "variables": list(system.variable_names()),
        "domains_sha256": hashlib.sha256(
            _canonical_json(domains).encode()
        ).hexdigest(),
    }


def system_cache_key(system) -> str:
    """Content-address of one system's *semantics*: sha256 over the
    canonical :func:`system_signature` JSON.

    This is the key the warm caches use — :class:`SweepRunner`'s
    kernel/engine/runner entries and the serving tier's chain and
    parametric-chain caches — so cache hits survive garbage collection
    and object-identity reuse, and value-equal systems built by
    different tenants share one compilation."""
    return hashlib.sha256(
        _canonical_json(system_signature(system)).encode()
    ).hexdigest()


def sampler_signature(sampler) -> list:
    """Canonical description of a scheduler sampler: type name plus its
    simple scalar parameters (private underscores stripped)."""
    params = {}
    for name, value in (getattr(sampler, "__dict__", None) or {}).items():
        if isinstance(value, (bool, int, float, str)):
            params[name.lstrip("_")] = value
    return [type(sampler).__name__, dict(sorted(params.items()))]


def legitimacy_signature(batch_legitimate, legitimate=None) -> list:
    """Canonical description of the legitimacy predicate.

    Compiled code-matrix predicates describe themselves by type and
    parameters; a bare Python callable falls back to its qualified name
    (campaign point families pin the predicate anyway, so the name only
    needs to distinguish, not to define)."""
    if batch_legitimate is not None:
        count = getattr(batch_legitimate, "count", None)
        if type(batch_legitimate).__name__ == "EnabledCountLegitimacy":
            return ["enabled-count", int(count)]
        return ["batch", type(batch_legitimate).__name__]
    name = getattr(legitimate, "__qualname__", None) or repr(legitimate)
    return ["predicate", name]


def fault_signature(fault) -> dict | None:
    """Canonical description of a fault plan (``None`` for fault-free)."""
    if fault is None:
        return None
    if dataclasses.is_dataclass(fault):
        return dataclasses.asdict(fault)
    raise StoreError(
        f"cannot canonicalize fault of type {type(fault).__name__}"
    )


# ----------------------------------------------------------------------
# the shard container
# ----------------------------------------------------------------------
def records_from_arrays(
    point: int,
    trial_offset: int,
    times: np.ndarray,
    converged: np.ndarray,
    timed_out: np.ndarray,
    hit_terminal: np.ndarray,
    fault_times: np.ndarray | None = None,
    rounds: np.ndarray | None = None,
) -> np.ndarray:
    """Assemble per-trial outcome vectors into a :data:`SHARD_SCHEMA`
    array (the exact payload a :class:`~repro.markov.montecarlo.TrialSink`
    receives from the execution engines)."""
    count = len(times)
    records = np.zeros(count, dtype=SHARD_SCHEMA)
    records["point"] = point
    records["trial"] = trial_offset + np.arange(count, dtype=np.uint32)
    records["time"] = times
    records["converged"] = converged
    records["timed_out"] = timed_out
    records["hit_terminal"] = hit_terminal
    records["fault_time"] = -1 if fault_times is None else fault_times
    records["rounds"] = np.nan if rounds is None else rounds
    return records


def encode_shard(records: np.ndarray, meta: Mapping) -> bytes:
    """Serialize records + metadata into the deterministic container."""
    if records.dtype != SHARD_SCHEMA:
        raise StoreError(
            f"records dtype {records.dtype} does not match SHARD_SCHEMA"
        )
    meta_bytes = _canonical_json(dict(meta)).encode()
    body = b"".join(
        (
            SHARD_MAGIC,
            _LENGTH.pack(len(meta_bytes)),
            meta_bytes,
            _LENGTH.pack(len(records)),
            np.ascontiguousarray(records).tobytes(),
        )
    )
    return body + hashlib.sha256(body).digest()


def decode_shard(data: bytes) -> tuple[np.ndarray, dict]:
    """Parse and *validate* a shard container.

    Raises :class:`StoreCorruptionError` on any structural damage:
    foreign magic, truncation, trailing garbage, or a checksum mismatch
    (bit flips anywhere in the file).
    """
    if len(data) < len(SHARD_MAGIC) + _CHECKSUM_BYTES:
        raise StoreCorruptionError("shard truncated below header size")
    if data[: len(SHARD_MAGIC)] != SHARD_MAGIC:
        raise StoreCorruptionError(
            f"bad shard magic {data[:len(SHARD_MAGIC)]!r}"
        )
    body, footer = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
    if hashlib.sha256(body).digest() != footer:
        raise StoreCorruptionError("shard checksum mismatch")
    cursor = len(SHARD_MAGIC)
    try:
        (meta_length,) = _LENGTH.unpack_from(body, cursor)
        cursor += _LENGTH.size
        meta = json.loads(body[cursor : cursor + meta_length].decode())
        cursor += meta_length
        (count,) = _LENGTH.unpack_from(body, cursor)
        cursor += _LENGTH.size
        payload = body[cursor:]
        if len(payload) != count * SHARD_SCHEMA.itemsize:
            raise StoreCorruptionError(
                f"shard payload holds {len(payload)} bytes,"
                f" expected {count * SHARD_SCHEMA.itemsize}"
            )
        records = np.frombuffer(payload, dtype=SHARD_SCHEMA).copy()
    except (struct.error, ValueError, UnicodeDecodeError) as error:
        raise StoreCorruptionError(f"shard body unparseable: {error}") from None
    return records, meta


def write_shard(
    path: str | pathlib.Path, records: np.ndarray, meta: Mapping
) -> pathlib.Path:
    """Encode and atomically persist one shard (see :mod:`.atomic`)."""
    return atomic_write_bytes(path, encode_shard(records, meta))


def read_shard(path: str | pathlib.Path) -> tuple[np.ndarray, dict]:
    """Read and validate one shard file."""
    try:
        data = pathlib.Path(path).read_bytes()
    except OSError as error:
        raise StoreError(f"cannot read shard {path}: {error}") from None
    return decode_shard(data)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ResultStore:
    """Directory of content-addressed shards with a quarantine bay.

    Layout::

        <root>/shards/<key>.shard          validated columnar shards
        <root>/quarantine/<key>.<n>.bad    corrupt files, kept for autopsy

    The store never deletes science: :meth:`load` moves a corrupt shard
    aside (unique ``.bad`` name) and reports it missing, so the caller
    regenerates it from its coordinates — crashing is not an option the
    campaign tier ever takes on corruption.
    """

    SHARD_SUFFIX = ".shard"

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.shards_dir = self.root / "shards"
        self.quarantine_dir = self.root / "quarantine"
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        """Where the shard with this content address lives."""
        return self.shards_dir / f"{key}{self.SHARD_SUFFIX}"

    def has(self, key: str) -> bool:
        """Whether a shard file exists (existence only — :meth:`load`
        validates)."""
        return self.path_for(key).exists()

    def keys(self) -> list[str]:
        """Content addresses present on disk, sorted."""
        return sorted(
            path.name[: -len(self.SHARD_SUFFIX)]
            for path in self.shards_dir.glob(f"*{self.SHARD_SUFFIX}")
        )

    def write(
        self, key: str, records: np.ndarray, meta: Mapping
    ) -> pathlib.Path:
        """Atomically persist one shard under its content address."""
        return write_shard(self.path_for(key), records, meta)

    def read(self, key: str) -> tuple[np.ndarray, dict]:
        """Read + validate; raises on absence or corruption."""
        path = self.path_for(key)
        if not path.exists():
            raise StoreError(f"no shard for key {key}")
        return decode_shard(path.read_bytes())

    def load(self, key: str) -> tuple[np.ndarray, dict] | None:
        """Read + validate, quarantining corruption.

        Returns ``None`` when the shard is absent *or* was just moved to
        quarantine — either way the caller's move is to regenerate it.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return decode_shard(path.read_bytes())
        except StoreCorruptionError:
            self.quarantine(key)
            return None

    def quarantine(self, key: str) -> pathlib.Path:
        """Move a shard file into the quarantine bay (unique suffix)."""
        source = self.path_for(key)
        attempt = 0
        while True:
            target = self.quarantine_dir / f"{key}.{attempt}.bad"
            if not target.exists():
                break
            attempt += 1
        source.replace(target)
        return target

    def verify(self) -> tuple[list[str], list[str]]:
        """Validate every shard on disk → ``(ok keys, corrupt keys)``.

        Corrupt shards are left in place — verification observes, the
        campaign runner decides (quarantine + regenerate).
        """
        ok: list[str] = []
        corrupt: list[str] = []
        for key in self.keys():
            try:
                decode_shard(self.path_for(key).read_bytes())
            except StoreCorruptionError:
                corrupt.append(key)
            else:
                ok.append(key)
        return ok, corrupt

    def sweep_temp(self) -> int:
        """Remove interrupted-write droppings (``*.tmp``); returns count."""
        removed = 0
        for path in self.shards_dir.glob("*.tmp"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
