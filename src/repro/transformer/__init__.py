"""The Section 4 coin-toss transformer and its configuration projections."""

from repro.transformer.coin_toss import (
    COIN_VARIABLE,
    CoinTossTransform,
    TransformedSpec,
    lift_configuration,
    make_transformed_system,
    project_configuration,
)

__all__ = [
    "COIN_VARIABLE",
    "CoinTossTransform",
    "TransformedSpec",
    "project_configuration",
    "lift_configuration",
    "make_transformed_system",
]
