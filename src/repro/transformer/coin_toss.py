"""The paper's weak-to-probabilistic transformer (Section 4).

Every action ``A :: G_A → S_A`` of a deterministic weak-stabilizing input
algorithm becomes::

    Trans(A) :: G_A → B ← Rand(true, false); if B then S_A

i.e. an activated process first tosses a fair coin into a fresh boolean
P-variable ``B`` and only applies the original statement when the toss
returns true.  The transformed system ``S_Prob``:

* keeps all original variables (D-variables) plus one boolean ``B`` per
  process, so configurations project onto the original space
  (:func:`project_configuration`);
* has legitimate set ``L_Prob = {γ : γ|S_Det ∈ L_Det}``
  (:class:`TransformedSpec`), which Lemma 1 shows strongly closed;
* is probabilistically self-stabilizing under the synchronous scheduler
  (Theorem 8) and the distributed randomized scheduler (Theorem 9) —
  both verified by the Markov analysis in the experiments.

Simultaneity is preserved: with probability ``2^{-|Enabled|} > 0`` every
enabled process wins its toss, which Algorithm 3 shows is indispensable.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.actions import Action, Outcome
from repro.core.algorithm import Algorithm
from repro.core.configuration import Configuration
from repro.core.system import System
from repro.core.topology import Topology
from repro.core.variables import VariableLayout, VarSpec
from repro.core.view import View
from repro.errors import ModelError
from repro.stabilization.specification import Specification

__all__ = [
    "CoinTossTransform",
    "TransformedSpec",
    "COIN_VARIABLE",
    "project_configuration",
    "lift_configuration",
    "make_transformed_system",
]

#: Name of the boolean P-variable the transformer adds to every process.
COIN_VARIABLE = "B_coin"


def _win_statement(base_statement):
    def statement(view: View) -> None:
        view.set(COIN_VARIABLE, True)
        base_statement(view)

    return statement


def _lose_statement(view: View) -> None:
    view.set(COIN_VARIABLE, False)


class CoinTossTransform(Algorithm):
    """``Trans(·)`` applied to every action of a base algorithm.

    The base algorithm may itself be probabilistic: the winning branch
    composes the coin with the base outcome distribution, the losing
    branch only records ``B = false``.

    ``win_probability`` generalizes the paper's fair coin (its value ½)
    to a biased ``Rand``; the ablation experiment ABL1 sweeps it.  Any
    value in (0, 1) preserves Theorems 8-9 — correctness only needs every
    toss pattern to have positive probability.
    """

    def __init__(self, base: Algorithm, win_probability: float = 0.5) -> None:
        if COIN_VARIABLE in self._base_variable_names(base):
            raise ModelError(
                f"base algorithm already declares {COIN_VARIABLE!r}"
            )
        if not 0.0 < win_probability < 1.0:
            raise ModelError(
                f"coin bias must be in (0, 1), got {win_probability!r}"
            )
        self._base = base
        self._win = win_probability
        if win_probability == 0.5:
            self.name = f"trans({base.name})"
        else:
            self.name = f"trans({base.name}, p={win_probability})"

    @staticmethod
    def _base_variable_names(base: Algorithm) -> tuple[str, ...]:
        # Variable names are topology-independent; probe lazily during
        # layout construction instead of here when unavailable.
        return ()

    @property
    def base(self) -> Algorithm:
        """The wrapped (typically deterministic weak-stabilizing) algorithm."""
        return self._base

    @property
    def win_probability(self) -> float:
        """Probability that a toss lets the base statement run."""
        return self._win

    @property
    def is_probabilistic(self) -> bool:
        return True

    def layout(self, topology: Topology, process: int) -> VariableLayout:
        base_layout = self._base.layout(topology, process)
        if COIN_VARIABLE in base_layout.names:
            raise ModelError(
                f"base algorithm already declares {COIN_VARIABLE!r}"
            )
        return VariableLayout(
            base_layout.specs + (VarSpec(COIN_VARIABLE, (False, True)),)
        )

    def constants(self, topology: Topology, process: int) -> Mapping:
        return self._base.constants(topology, process)

    def actions(self) -> tuple[Action, ...]:
        transformed = []
        for action in self._base.actions():
            transformed.append(self._transform_action(action, self._win))
        return tuple(transformed)

    @staticmethod
    def _transform_action(action: Action, win: float) -> Action:
        def outcomes(view: View):
            branches = [
                Outcome(win * outcome.probability,
                        _win_statement(outcome.statement))
                for outcome in action.outcomes(view)
            ]
            branches.append(Outcome(1.0 - win, _lose_statement))
            return branches

        return Action(
            name=f"Trans({action.name})",
            guard=action.guard,
            outcomes=outcomes,
        )


# ----------------------------------------------------------------------
# configuration projection (the paper's γ|S_Det)
# ----------------------------------------------------------------------
def project_configuration(
    transformed_system: System, configuration: Configuration
) -> Configuration:
    """Drop the coin variable: ``γ ↦ γ|S_Det``."""
    slot = transformed_system.layouts[0].slot(COIN_VARIABLE)
    return tuple(
        state[:slot] + state[slot + 1:] for state in configuration
    )


def lift_configuration(
    transformed_system: System,
    base_configuration: Configuration,
    coin_value: bool = False,
) -> Configuration:
    """One lift of a base configuration (all coins set to ``coin_value``)."""
    slot = transformed_system.layouts[0].slot(COIN_VARIABLE)
    lifted = []
    for state in base_configuration:
        values = list(state)
        values.insert(slot, coin_value)
        lifted.append(tuple(values))
    configuration = tuple(lifted)
    transformed_system.check_configuration(configuration)
    return configuration


class TransformedSpec(Specification):
    """``L_Prob = {γ ∈ C_Prob : γ|S_Det ∈ L_Det}`` (Definition 7)."""

    def __init__(self, base_spec: Specification, base_system: System) -> None:
        self.name = f"trans({base_spec.name})"
        self._base_spec = base_spec
        self._base_system = base_system

    def legitimate(self, system: System, configuration: Configuration) -> bool:
        projected = project_configuration(system, configuration)
        return self._base_spec.legitimate(self._base_system, projected)


def make_transformed_system(
    base_system: System, win_probability: float = 0.5
) -> System:
    """Transformed system on the same topology as ``base_system``."""
    return System(
        CoinTossTransform(base_system.algorithm, win_probability),
        base_system.topology,
    )
