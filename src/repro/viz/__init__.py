"""Text renderings of configurations and executions (the paper's figures)."""

from repro.viz.ring_art import render_ring_configuration, render_ring_execution
from repro.viz.trace_render import render_lasso, render_trace
from repro.viz.tree_art import render_enabled_actions, render_parent_pointers

__all__ = [
    "render_ring_configuration",
    "render_ring_execution",
    "render_parent_pointers",
    "render_enabled_actions",
    "render_trace",
    "render_lasso",
]
