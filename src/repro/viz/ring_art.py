"""ASCII rendering of ring configurations (reproduces Figure 1 as text).

The paper's Figure 1 draws the ring with each process's ``dt`` value and
an asterisk on the token holder.  We render one configuration per column
so an execution reads left-to-right like the paper's (i), (ii), (iii).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.configuration import Configuration
from repro.core.system import System

__all__ = ["render_ring_configuration", "render_ring_execution"]


def render_ring_configuration(
    system: System,
    configuration: Configuration,
    marked: Sequence[int],
    variable: str = "dt",
) -> str:
    """One ring configuration as ``p0:v0  p1:v1* ...`` (``*`` = marked)."""
    slot = system.layouts[0].slot(variable)
    cells = []
    marked_set = set(marked)
    for p in system.processes:
        star = "*" if p in marked_set else " "
        cells.append(f"p{p}:{configuration[p][slot]}{star}")
    return " ".join(cells)


def render_ring_execution(
    system: System,
    configurations: Sequence[Configuration],
    mark: Callable[[System, Configuration], Sequence[int]],
    variable: str = "dt",
    labels: Sequence[str] | None = None,
) -> str:
    """Several configurations, one per line, Roman-numbered like Figure 1."""
    lines = []
    for index, configuration in enumerate(configurations):
        label = (
            labels[index]
            if labels is not None
            else f"({_roman(index + 1)})"
        )
        rendered = render_ring_configuration(
            system, configuration, mark(system, configuration), variable
        )
        lines.append(f"{label:>7}  {rendered}")
    return "\n".join(lines)


def _roman(value: int) -> str:
    numerals = (
        (10, "x"), (9, "ix"), (5, "v"), (4, "iv"), (1, "i"),
    )
    parts = []
    remaining = value
    for magnitude, symbol in numerals:
        while remaining >= magnitude:
            parts.append(symbol)
            remaining -= magnitude
    return "".join(parts)
