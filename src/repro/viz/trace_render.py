"""Tabular rendering of execution traces."""

from __future__ import annotations

from repro.core.system import System
from repro.core.trace import Lasso, Trace

__all__ = ["render_trace", "render_lasso"]


def render_trace(system: System, trace: Trace, max_rows: int = 50) -> str:
    """Step-by-step table: configuration, then who moved with which action."""
    names = system.variable_names()
    lines = [f"step | movers | {' '.join(names)} per process"]
    for index, configuration in enumerate(trace.configurations):
        if index >= max_rows:
            lines.append(f"... ({len(trace.configurations) - max_rows} more)")
            break
        if index == 0:
            movers = "(init)"
        else:
            step = trace.steps[index - 1]
            movers = ",".join(
                f"p{move.process}:{move.action_name}"
                for move in step.moves
            )
        state = " | ".join(
            ",".join(str(v) for v in local) for local in configuration
        )
        lines.append(f"{index:4d} | {movers} | {state}")
    return "\n".join(lines)


def render_lasso(system: System, lasso: Lasso, max_rows: int = 50) -> str:
    """Prefix then cycle, with the cycle marked."""
    prefix = Trace(
        configurations=list(lasso.prefix_configurations),
        steps=list(lasso.prefix_steps),
    )
    cycle = Trace(
        configurations=[lasso.entry, *lasso.cycle_configurations],
        steps=list(lasso.cycle_steps),
    )
    return (
        "prefix:\n"
        + render_trace(system, prefix, max_rows)
        + f"\ncycle (period {lasso.cycle_length}, repeats forever):\n"
        + render_trace(system, cycle, max_rows)
    )
