"""ASCII rendering of parent-pointer configurations on trees (Figures 2-3).

The paper draws ``Par`` pointers as arrows.  We render a configuration as
one ``p -> q`` line per process (``p -> LEADER`` for ``Par = ⊥``), plus
the enabled-action labels that annotate the paper's figures.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.system import System
from repro.core.variables import BOTTOM

__all__ = ["render_parent_pointers", "render_enabled_actions"]


def render_parent_pointers(
    system: System,
    configuration: Configuration,
    pointer: str = "Par",
) -> str:
    """One line per process: ``p3 -> p1`` or ``p5 -> LEADER``."""
    slot = system.layouts[0].slot(pointer)
    topology = system.topology
    lines = []
    for p in system.processes:
        value = configuration[p][slot]
        if value is BOTTOM:
            lines.append(f"p{p} -> LEADER")
        else:
            lines.append(f"p{p} -> p{topology.neighbor(p, value)}")
    return "\n".join(lines)


def render_enabled_actions(
    system: System, configuration: Configuration
) -> str:
    """The paper's figure annotations: ``p0:[A1] p1:[] p2:[A2] ...``."""
    cells = []
    for p in system.processes:
        names = [a.name for a in system.enabled_actions(configuration, p)]
        cells.append(f"p{p}:[{','.join(names)}]")
    return " ".join(cells)
