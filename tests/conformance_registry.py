"""The shared system/sampler registry behind the conformance matrix.

One fixture table — algorithms × topologies × schedulers, with
per-combination execution modes — consumed by
``tests/test_engine_conformance.py`` (``pytest -m conformance``) and
exposed through the ``conformance_registry`` fixture in
``tests/conftest.py``.  Future engine PRs extend *this* table instead
of writing per-PR ad-hoc equivalence suites.

(This lives in its own module, not in ``conftest.py`` itself, because
test modules cannot reliably ``import conftest`` — the benchmarks
directory has a ``conftest.py`` of its own that wins the name when the
whole repository is collected.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.algorithms.coloring import ProperColoringSpec, make_coloring_system
from repro.algorithms.herman_ring import (
    HermanSingleTokenSpec,
    make_herman_system,
)
from repro.algorithms.herman_variants import (
    make_herman_random_bit_system,
    make_herman_random_pass_system,
    make_herman_speed_reducer2_system,
    make_herman_speed_reducer_system,
)
from repro.algorithms.israeli_jalfon import (
    IJMergedSpec,
    make_israeli_jalfon_system,
)
from repro.algorithms.leader_tree import TreeLeaderSpec, make_leader_tree_system
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.core.system import System
from repro.graphs.generators import path, random_tree, ring, star
from repro.markov.batch import BatchLegitimacy, EnabledCountLegitimacy
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    BernoulliSampler,
    CentralRandomizedSampler,
    DistributedRandomizedSampler,
    SynchronousSampler,
)
from repro.stabilization.faults import FaultPlan
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system

__all__ = [
    "ConformanceSystem",
    "CONFORMANCE_SAMPLERS",
    "CONFORMANCE_SYSTEMS",
    "conformance_system",
    "conformance_entry",
    "conformance_fault_plan",
    "conformance_matrix",
    "ks_statistic",
    "ks_bound",
]


@dataclass(frozen=True)
class ConformanceSystem:
    """One algorithm/topology cell of the conformance matrix.

    ``legitimate`` builds the scalar predicate for a built system;
    ``batch_legitimate`` is its compiled counterpart (``None`` exercises
    the decoding fallback).  ``sampler_modes`` maps sampler keys to the
    equivalence mode the engines are held to:

    * ``"ks"`` — stochastic dynamics: every engine must converge every
      trial and the per-trial stabilization-time distributions must
      agree under a seeded two-sample Kolmogorov–Smirnov bound;
    * ``"exact"`` — deterministic dynamics (deterministic algorithm
      under the synchronous sampler) run from *explicit* initial
      configurations, so every engine must produce identical results,
      converged or censored.
    """

    name: str
    algorithm: str
    topology: str
    build: Callable[[], System]
    legitimate: Callable[[System], Callable]
    batch_legitimate: BatchLegitimacy | None
    sampler_modes: tuple[tuple[str, str], ...]
    trials: int = 150
    max_steps: int = 30_000


def _spec_predicate(spec_factory):
    def bind(system):
        spec = spec_factory()
        return lambda configuration: spec.legitimate(system, configuration)

    return bind


def _transformed_token_predicate(system):
    # A structurally equal base system is enough: TransformedSpec only
    # uses it to project and evaluate the base legitimacy predicate.
    base = make_token_ring_system(5)
    spec = TransformedSpec(TokenCirculationSpec(), base)
    return lambda configuration: spec.legitimate(system, configuration)


CONFORMANCE_SAMPLERS: dict[str, Callable[[], object]] = {
    "synchronous": SynchronousSampler,
    "central": CentralRandomizedSampler,
    "distributed": DistributedRandomizedSampler,
    "bernoulli": lambda: BernoulliSampler(0.7),
}


CONFORMANCE_SYSTEMS: tuple[ConformanceSystem, ...] = (
    ConformanceSystem(
        name="token-ring5",
        algorithm="token-ring",
        topology="ring",
        build=lambda: make_token_ring_system(5),
        legitimate=_spec_predicate(TokenCirculationSpec),
        batch_legitimate=EnabledCountLegitimacy(1),
        sampler_modes=(
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
            ("synchronous", "exact"),
        ),
    ),
    ConformanceSystem(
        name="trans-token-ring5",
        algorithm="trans(token-ring)",
        topology="ring",
        build=lambda: make_transformed_system(make_token_ring_system(5)),
        legitimate=_transformed_token_predicate,
        batch_legitimate=EnabledCountLegitimacy(1),
        sampler_modes=(
            ("synchronous", "ks"),
            ("central", "ks"),
        ),
    ),
    ConformanceSystem(
        name="herman-ring5",
        algorithm="herman",
        topology="ring",
        build=lambda: make_herman_system(5),
        legitimate=_spec_predicate(HermanSingleTokenSpec),
        # NOT EnabledCountLegitimacy(1): a Herman process is *always*
        # enabled (T or NT covers every neighborhood), so token count
        # and enabled count are different things here — the decoding
        # fallback is the only correct compiled legitimacy.
        batch_legitimate=None,
        sampler_modes=(
            ("synchronous", "ks"),
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="herman-rb-ring5",
        algorithm="herman-random-bit",
        topology="ring",
        build=lambda: make_herman_random_bit_system(5, bias=0.65),
        legitimate=_spec_predicate(HermanSingleTokenSpec),
        # Like classic Herman: every process is always enabled, so the
        # decoding fallback is the only correct compiled legitimacy.
        batch_legitimate=None,
        sampler_modes=(
            ("synchronous", "ks"),
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="herman-rp-ring5",
        algorithm="herman-random-pass",
        topology="ring",
        build=lambda: make_herman_random_pass_system(5, bias=0.35),
        legitimate=_spec_predicate(HermanSingleTokenSpec),
        batch_legitimate=None,
        sampler_modes=(
            ("synchronous", "ks"),
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="herman-sr-ring5",
        algorithm="herman-speed-reducer",
        topology="ring",
        build=lambda: make_herman_speed_reducer_system(
            5, bias=0.7, wake=0.3
        ),
        legitimate=_spec_predicate(HermanSingleTokenSpec),
        batch_legitimate=None,
        sampler_modes=(
            ("synchronous", "ks"),
            ("central", "ks"),
            ("distributed", "ks"),
        ),
    ),
    ConformanceSystem(
        name="herman-sr2-ring5",
        algorithm="herman-speed-reducer2",
        topology="ring",
        build=lambda: make_herman_speed_reducer2_system(
            5, bias=0.6, wake=0.4, slip=0.2
        ),
        legitimate=_spec_predicate(HermanSingleTokenSpec),
        batch_legitimate=None,
        sampler_modes=(
            ("synchronous", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="israeli-jalfon-ring6",
        algorithm="israeli-jalfon",
        topology="ring",
        build=lambda: make_israeli_jalfon_system(6),
        legitimate=_spec_predicate(IJMergedSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
            # Lockstep wall tokens rotate forever: deterministic livelock.
            ("synchronous", "exact"),
        ),
    ),
    ConformanceSystem(
        name="leader-path5",
        algorithm="leader-tree",
        topology="chain",
        build=lambda: make_leader_tree_system(path(5)),
        legitimate=_spec_predicate(TreeLeaderSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
            # Figure 3's oscillation: deterministic synchronous livelock.
            ("synchronous", "exact"),
        ),
    ),
    ConformanceSystem(
        name="leader-star4",
        algorithm="leader-tree",
        topology="star",
        build=lambda: make_leader_tree_system(star(4)),
        legitimate=_spec_predicate(TreeLeaderSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("distributed", "ks"),
        ),
    ),
    ConformanceSystem(
        name="leader-tree7",
        algorithm="leader-tree",
        topology="tree",
        build=lambda: make_leader_tree_system(
            random_tree(7, RandomSource(3))
        ),
        # No compiled counterpart on purpose: exercises the decoding
        # legitimacy fallback through every engine.
        legitimate=_spec_predicate(TreeLeaderSpec),
        batch_legitimate=None,
        sampler_modes=(
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="coloring-ring5",
        algorithm="coloring",
        topology="ring",
        build=lambda: make_coloring_system(ring(5)),
        legitimate=_spec_predicate(ProperColoringSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("distributed", "ks"),
            ("bernoulli", "ks"),
            ("synchronous", "exact"),
        ),
    ),
    ConformanceSystem(
        name="coloring-chain5",
        algorithm="coloring",
        topology="chain",
        build=lambda: make_coloring_system(path(5)),
        legitimate=_spec_predicate(ProperColoringSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("distributed", "ks"),
            ("bernoulli", "ks"),
        ),
    ),
    ConformanceSystem(
        name="coloring-star4",
        algorithm="coloring",
        topology="star",
        build=lambda: make_coloring_system(star(4)),
        legitimate=_spec_predicate(ProperColoringSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("synchronous", "exact"),
        ),
    ),
    ConformanceSystem(
        name="coloring-tree6",
        algorithm="coloring",
        topology="tree",
        build=lambda: make_coloring_system(
            random_tree(6, RandomSource(5))
        ),
        legitimate=_spec_predicate(ProperColoringSpec),
        batch_legitimate=EnabledCountLegitimacy(0),
        sampler_modes=(
            ("central", "ks"),
            ("synchronous", "exact"),
        ),
    ),
)


@lru_cache(maxsize=None)
def conformance_system(name: str) -> System:
    """Build (once) the system of one registry entry."""
    for entry in CONFORMANCE_SYSTEMS:
        if entry.name == name:
            return entry.build()
    raise KeyError(f"unknown conformance system {name!r}")


def conformance_entry(name: str) -> ConformanceSystem:
    """Registry entry by name."""
    for entry in CONFORMANCE_SYSTEMS:
        if entry.name == name:
            return entry
    raise KeyError(f"unknown conformance system {name!r}")


def conformance_fault_plan(system: System, mode: str) -> FaultPlan:
    """The fault axis: one seeded transient corruption per matrix cell.

    ``"ks"`` cells converge on every engine, so the fault strikes *at
    convergence* — the canonical self-stabilization scenario — and the
    engines are compared on recovery as well as total stabilization
    times.  ``"exact"`` cells are deterministic (and may livelock, so an
    at-convergence trigger would never fire): the fault strikes at a
    fixed step instead, and the engines must stay bit-identical through
    the corruption.
    """
    processes = min(2, system.num_processes)
    if mode == "exact":
        return FaultPlan(
            processes=processes, step=7, mode="adversarial-reset", seed=1312
        )
    return FaultPlan(processes=processes, step=None, mode="random", seed=1312)


def conformance_matrix() -> list[tuple[str, str, str]]:
    """Every valid ``(system, sampler, mode)`` cell of the matrix."""
    return [
        (entry.name, sampler_key, mode)
        for entry in CONFORMANCE_SYSTEMS
        for sampler_key, mode in entry.sampler_modes
    ]


def ks_statistic(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup CDF distance)."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_bound(n: int, m: int, confidence: float = 2.0) -> float:
    """KS acceptance threshold ``c · sqrt((n + m) / (n m))``.

    ``confidence=2.0`` corresponds to α ≈ 0.0007 — runs are seeded, so
    this is a deterministic regression bound, not a flaky gate.
    """
    return confidence * ((n + m) / (n * m)) ** 0.5
