"""Shared fixtures: small systems used across the test-suite, plus the
system/sampler registry behind the cross-engine conformance matrix
(``tests/conformance_registry.py``, consumed by
``tests/test_engine_conformance.py`` — run with ``pytest -m
conformance``)."""

from __future__ import annotations

import pytest

import conformance_registry
from repro.algorithms.coloring import make_coloring_system
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.token_ring import make_token_ring_system
from repro.algorithms.two_process import make_two_process_system
from repro.graphs.generators import complete, figure3_chain, path, ring, star
from repro.random_source import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(42)


@pytest.fixture
def ring5_system():
    """Algorithm 1 on a 5-ring (m_5 = 2, 32 configurations)."""
    return make_token_ring_system(5)


@pytest.fixture
def ring6_system():
    """Algorithm 1 on the paper's 6-ring (m_6 = 4, 4096 configurations)."""
    return make_token_ring_system(6)


@pytest.fixture
def chain4_system():
    """Algorithm 2 on the Figure 3 chain (36 configurations)."""
    return make_leader_tree_system(figure3_chain())


@pytest.fixture
def star3_system():
    """Algorithm 2 on the star K1,3."""
    return make_leader_tree_system(star(3))


@pytest.fixture
def two_process_system():
    """Algorithm 3 (4 configurations)."""
    return make_two_process_system()


@pytest.fixture
def k2_coloring_system():
    """Greedy coloring on a single edge (the synchronous-livelock demo)."""
    return make_coloring_system(complete(2))


@pytest.fixture
def path4_graph():
    return path(4)


@pytest.fixture
def ring6_graph():
    return ring(6)


@pytest.fixture
def conformance():
    """The shared conformance registry module (systems, samplers,
    matrix, KS helpers) — see ``tests/conformance_registry.py``."""
    return conformance_registry
