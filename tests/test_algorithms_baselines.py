"""Tests for the Dijkstra, Herman and Israeli-Jalfon baselines."""

import math

import pytest

from repro.algorithms.dijkstra_ring import (
    DijkstraKStateAlgorithm,
    SinglePrivilegeSpec,
    make_dijkstra_system,
    privileged_processes,
)
from repro.algorithms.herman_ring import (
    HermanAlgorithm,
    HermanSingleTokenSpec,
    herman_token_holders,
    make_herman_system,
)
from repro.algorithms.israeli_jalfon import (
    ij_expected_merge_time,
    ij_simulate_merge_time,
    ij_successors,
)
from repro.errors import ModelError
from repro.markov.builder import build_chain
from repro.markov.hitting import hitting_summary
from repro.random_source import RandomSource
from repro.schedulers.distributions import SynchronousDistribution
from repro.schedulers.relations import CentralRelation
from repro.stabilization.classify import classify


class TestDijkstra:
    def test_validation(self):
        with pytest.raises(ModelError):
            DijkstraKStateAlgorithm(2)
        with pytest.raises(ModelError):
            DijkstraKStateAlgorithm(3, k=1)

    def test_default_k_is_n(self):
        assert DijkstraKStateAlgorithm(5).k == 5

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_self_stabilizing_under_central(self, n):
        verdict = classify(
            make_dijkstra_system(n),
            SinglePrivilegeSpec(),
            CentralRelation(),
        )
        assert verdict.is_self_stabilizing
        assert verdict.behavior_violations == ()

    def test_k_too_small_breaks_self_stabilization(self):
        """K = 2 on a 4-ring is known to admit livelocks."""
        verdict = classify(
            make_dijkstra_system(4, k=2),
            SinglePrivilegeSpec(),
            CentralRelation(),
        )
        assert not verdict.is_self_stabilizing

    def test_legitimate_single_privilege(self):
        system = make_dijkstra_system(4)
        # all-equal counters: only the bottom is privileged
        configuration = ((0,), (0,), (0,), (0,))
        assert privileged_processes(system, configuration) == (0,)

    def test_privilege_circulates(self):
        system = make_dijkstra_system(4)
        configuration = ((0,), (0,), (0,), (0,))
        seen = set()
        for _ in range(4 * 4):
            (holder,) = privileged_processes(system, configuration)
            seen.add(holder)
            (branch,) = system.subset_branches(configuration, (holder,))
            configuration = branch.target
        assert seen == {0, 1, 2, 3}


class TestHerman:
    def test_validation(self):
        with pytest.raises(ModelError):
            HermanAlgorithm(4)  # even
        with pytest.raises(ModelError):
            HermanAlgorithm(1)

    def test_probabilistic_flag(self):
        assert HermanAlgorithm(5).is_probabilistic

    def test_token_parity_odd(self):
        system = make_herman_system(5)
        for configuration in system.all_configurations():
            assert len(herman_token_holders(system, configuration)) % 2 == 1

    def test_all_processes_always_enabled(self):
        system = make_herman_system(5)
        for configuration in list(system.all_configurations())[:8]:
            assert system.enabled_processes(configuration) == tuple(range(5))

    def test_converges_with_probability_one(self):
        system = make_herman_system(5)
        chain = build_chain(system, SynchronousDistribution())
        summary = hitting_summary(
            chain, chain.mark(HermanSingleTokenSpec().legitimate)
        )
        assert summary.converges_with_probability_one

    def test_expected_time_grows_quadratically_ish(self):
        means = {}
        for n in (3, 5, 7):
            system = make_herman_system(n)
            chain = build_chain(system, SynchronousDistribution())
            summary = hitting_summary(
                chain, chain.mark(HermanSingleTokenSpec().legitimate)
            )
            means[n] = summary.mean_expected_steps
        assert means[3] < means[5] < means[7]
        # superlinear growth
        assert means[7] / means[5] > 7 / 5

    def test_single_token_closed_in_support(self):
        """Herman's legitimate set is closed: from one token the support
        of the synchronous step stays at one token."""
        system = make_herman_system(5)
        spec = HermanSingleTokenSpec()
        chain = build_chain(system, SynchronousDistribution())
        for state_id, state in enumerate(chain.states):
            if not spec.legitimate(system, state):
                continue
            for successor in chain.rows[state_id]:
                assert spec.legitimate(system, chain.states[successor])


class TestIsraeliJalfon:
    def test_successors_two_tokens(self):
        successors = ij_successors(frozenset({0, 3}), 6)
        total = sum(p for p, _ in successors)
        assert math.isclose(total, 1.0)
        for probability, state in successors:
            assert 1 <= len(state) <= 2

    def test_successors_merge(self):
        # tokens adjacent: moving one onto the other merges
        successors = ij_successors(frozenset({0, 1}), 5)
        merged = [s for _, s in successors if len(s) == 1]
        assert merged

    def test_successors_validation(self):
        with pytest.raises(ModelError):
            ij_successors(frozenset(), 5)
        with pytest.raises(ModelError):
            ij_successors(frozenset({0}), 2)

    def test_expected_merge_time_single_token_zero(self):
        assert ij_expected_merge_time(6, frozenset({2})) == 0.0

    def test_expected_merge_time_positive(self):
        time_6 = ij_expected_merge_time(6, frozenset({0, 3}))
        assert time_6 > 0

    def test_expected_merge_time_grows_with_gap(self):
        close = ij_expected_merge_time(10, frozenset({0, 1}))
        far = ij_expected_merge_time(10, frozenset({0, 5}))
        assert far > close

    def test_two_opposite_tokens_matches_gamblers_ruin(self):
        """The inter-token distance is a lazy ±1 random walk absorbed at
        0 or N: from distance d the classical expected absorption time of
        the (non-lazy) walk is d (N - d); each IJ step moves the gap with
        probability 1 (one of the two tokens always moves), so the times
        match exactly."""
        n = 8
        measured = ij_expected_merge_time(n, frozenset({0, 4}))
        assert math.isclose(measured, 4 * (8 - 4))

    def test_simulation_agrees_with_exact(self):
        n = 6
        exact = ij_expected_merge_time(n, frozenset({0, 3}))
        result = ij_simulate_merge_time(
            n, num_tokens=2, trials=1500, rng=RandomSource(4)
        )
        # random starting positions average over distances; compare
        # loosely against the diametric case
        assert 0.3 * exact < result.stats.mean < 1.5 * exact

    def test_simulation_validation(self):
        with pytest.raises(ModelError):
            ij_simulate_merge_time(6, 0, 1, RandomSource(0))
        with pytest.raises(ModelError):
            ij_simulate_merge_time(6, 7, 1, RandomSource(0))
