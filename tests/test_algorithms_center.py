"""Tests for BGKP center finding and the log N-bit center-leader election."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.center_finding import (
    CentersCorrectSpec,
    local_centers,
    make_center_finding_system,
)
from repro.algorithms.center_leader import (
    CenterLeaderSpec,
    center_leader_leaders,
    make_center_leader_system,
)
from repro.errors import TopologyError
from repro.graphs.generators import (
    broom,
    path,
    random_tree,
    ring,
    spider,
    star,
)
from repro.graphs.properties import centers as true_centers
from repro.graphs.prufer import all_labeled_trees
from repro.random_source import RandomSource
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.stabilization.classify import classify
from repro.stabilization.statespace import StateSpace
from repro.stabilization.witnesses import synchronous_lasso


def _terminal_configurations(system, limit=None):
    found = []
    for configuration in system.all_configurations():
        if system.is_terminal(configuration):
            found.append(configuration)
            if limit and len(found) >= limit:
                break
    return found


class TestCenterFinding:
    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            make_center_finding_system(ring(4))

    @pytest.mark.parametrize(
        "graph",
        [path(2), path(3), path(4), path(5), star(3), spider(3, 2),
         broom(2, 2)],
        ids=["P2", "P3", "P4", "P5", "K13", "spider", "broom"],
    )
    def test_terminal_marks_true_centers(self, graph):
        """At every fixed point the local Center predicate marks exactly
        the brute-force centers."""
        system = make_center_finding_system(graph)
        terminals = _terminal_configurations(system)
        assert len(terminals) == 1  # the height fixed point is unique
        assert local_centers(system, terminals[0]) == true_centers(graph)

    def test_all_trees_n5_unique_fixed_point(self):
        for tree in all_labeled_trees(5):
            system = make_center_finding_system(tree)
            terminals = _terminal_configurations(system)
            assert len(terminals) == 1
            assert local_centers(system, terminals[0]) == true_centers(tree)

    @pytest.mark.parametrize(
        "graph", [path(3), path(4), star(3)], ids=["P3", "P4", "K13"]
    )
    def test_self_stabilizing_under_distributed(self, graph):
        verdict = classify(
            make_center_finding_system(graph),
            CentersCorrectSpec(graph),
            DistributedRelation(),
        )
        assert verdict.is_self_stabilizing

    def test_synchronous_converges_small(self):
        """BGKP height iteration also converges synchronously on the
        trees we test (no symmetric livelock: heights are not pointers)."""
        for graph in (path(4), star(3)):
            system = make_center_finding_system(graph)
            for configuration in system.all_configurations():
                _, lasso = synchronous_lasso(system, configuration)
                assert lasso is None

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(0, 10**6))
    def test_random_trees_fixed_point_correct(self, n, seed):
        tree = random_tree(n, RandomSource(seed))
        system = make_center_finding_system(tree)
        # run the unique synchronous execution to its terminal config
        trace, lasso = synchronous_lasso(
            system, next(system.all_configurations())
        )
        assert lasso is None
        assert local_centers(system, trace.final) == true_centers(tree)

    def test_two_center_partner_detection(self):
        """With two centers the partner is the unique equal-height
        neighbor at the fixed point (used by the tie-break)."""
        graph = path(4)
        system = make_center_finding_system(graph)
        (terminal,) = _terminal_configurations(system)
        slot = system.layouts[0].slot("h")
        c0, c1 = true_centers(graph)
        assert terminal[c0][slot] == terminal[c1][slot]
        # no other neighbor of a center carries the same height
        for center in (c0, c1):
            partners = [
                q
                for q in system.topology.neighbors(center)
                if terminal[q][slot] == terminal[center][slot]
            ]
            assert partners == [c0 if center == c1 else c1]


class TestCenterLeader:
    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            make_center_leader_system(ring(3))

    def test_unique_center_leader_is_center(self):
        graph = path(5)
        system = make_center_leader_system(graph)
        spec = CenterLeaderSpec()
        legitimate = [
            c
            for c in system.all_configurations()
            if spec.legitimate(system, c)
        ]
        assert legitimate
        for configuration in legitimate:
            assert center_leader_leaders(system, configuration) == (
                true_centers(graph)
            )

    def test_two_center_tiebreak(self):
        graph = path(4)
        system = make_center_leader_system(graph)
        spec = CenterLeaderSpec()
        leaders_seen = set()
        for configuration in system.all_configurations():
            if spec.legitimate(system, configuration):
                (leader,) = center_leader_leaders(system, configuration)
                leaders_seen.add(leader)
        assert leaders_seen == set(true_centers(graph))

    def test_legitimate_iff_terminal_with_correct_centers(self):
        graph = path(3)
        system = make_center_leader_system(graph)
        spec = CenterLeaderSpec()
        for configuration in system.all_configurations():
            if spec.legitimate(system, configuration):
                assert system.is_terminal(configuration)

    @pytest.mark.parametrize("graph", [path(3), path(4)], ids=["P3", "P4"])
    def test_weak_not_self(self, graph):
        verdict = classify(
            make_center_leader_system(graph),
            CenterLeaderSpec(),
            CentralRelation(),
        )
        assert verdict.is_weak_stabilizing
        # On P3 the center is unique: no tie-break, certain convergence
        # may hold; on P4 two centers force the B-flip livelock.
        if len(true_centers(graph)) == 2:
            assert not verdict.is_self_stabilizing

    def test_mutually_exclusive_guards(self):
        system = make_center_leader_system(path(4))
        for configuration in system.all_configurations():
            for p in system.processes:
                assert len(system.enabled_actions(configuration, p)) <= 1
