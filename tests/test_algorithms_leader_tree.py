"""Tests for Algorithm 2 (leader election) — Lemmas 7, 10, Theorem 4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.leader_tree import (
    LeaderTreeAlgorithm,
    TreeLeaderSpec,
    figure2_initial_configuration,
    figure2_system,
    leaders,
    make_leader_tree_system,
    root_of,
    satisfies_lc,
)
from repro.core.variables import BOTTOM
from repro.errors import TopologyError
from repro.graphs.generators import path, random_tree, ring, star
from repro.graphs.prufer import all_labeled_trees
from repro.random_source import RandomSource
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.stabilization.classify import classify
from repro.stabilization.witnesses import synchronous_lasso


class TestConstruction:
    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            make_leader_tree_system(ring(4))

    def test_par_domain_sizes(self):
        system = make_leader_tree_system(star(3))
        assert system.layouts[0].spec("Par").size == 4  # hub: 3 + bottom
        assert system.layouts[1].spec("Par").size == 2  # leaf: 1 + bottom


class TestPredicates:
    def test_leaders(self, chain4_system):
        configuration = ((BOTTOM,), (0,), (1,), (0,))
        assert leaders(chain4_system, configuration) == [0]

    def test_root_of_follows_pointers(self, chain4_system):
        # all point left: 3 -> 2 -> 1 -> 0 (leader)
        configuration = ((BOTTOM,), (0,), (0,), (0,))
        for q in range(4):
            assert root_of(chain4_system, configuration, q) == 0

    def test_root_of_mutual_pair(self, chain4_system):
        # 0 <-> 1 mutual pair; 2, 3 hang below 1... Par_2 = toward 1,
        # Par_3 = toward 2.
        configuration = ((0,), (0,), (0,), (0,))
        assert root_of(chain4_system, configuration, 0) == 0
        assert root_of(chain4_system, configuration, 1) == 1
        assert root_of(chain4_system, configuration, 3) in (0, 1)

    def test_lc_requires_unique_leader(self, chain4_system):
        no_leader = ((0,), (0,), (0,), (0,))
        two_leaders = ((BOTTOM,), (0,), (BOTTOM,), (0,))
        assert not satisfies_lc(chain4_system, no_leader)
        assert not satisfies_lc(chain4_system, two_leaders)

    def test_lc_positive_case(self, chain4_system):
        configuration = ((BOTTOM,), (0,), (0,), (0,))
        assert satisfies_lc(chain4_system, configuration)

    def test_lc_leader_not_rooted(self, chain4_system):
        # 0 is leader but 2,3 point away from it (toward 3): their root
        # is not 0 -> LC fails.
        configuration = ((BOTTOM,), (0,), (1,), (0,))
        assert satisfies_lc(chain4_system, configuration) == (
            root_of(chain4_system, configuration, 2) == 0
            and root_of(chain4_system, configuration, 3) == 0
        )


class TestLemma10:
    """LC(γ) iff γ terminal — exhaustively on several trees."""

    @pytest.mark.parametrize(
        "graph", [path(2), path(3), path(4), star(3), star(4)],
        ids=["P2", "P3", "P4", "K13", "K14"],
    )
    def test_lc_iff_terminal(self, graph):
        system = make_leader_tree_system(graph)
        for configuration in system.all_configurations():
            assert satisfies_lc(system, configuration) == system.is_terminal(
                configuration
            )

    def test_number_of_terminal_configs_equals_n(self):
        """Each process can be the unique leader in exactly one terminal
        configuration (pointers toward it are forced on a tree)."""
        for graph in (path(3), path(4), star(4)):
            system = make_leader_tree_system(graph)
            terminal = [
                c
                for c in system.all_configurations()
                if system.is_terminal(c)
            ]
            assert len(terminal) == graph.num_nodes


class TestLemma7:
    @pytest.mark.parametrize(
        "graph", [path(3), path(4), star(3)], ids=["P3", "P4", "K13"]
    )
    def test_no_leader_implies_a1_enabled(self, graph):
        system = make_leader_tree_system(graph)
        for configuration in system.all_configurations():
            if leaders(system, configuration):
                continue
            a1_enabled = any(
                action.name == "A1"
                for p in system.processes
                for action in system.enabled_actions(configuration, p)
            )
            assert a1_enabled


class TestTheorem4:
    def test_all_labeled_trees_n4_weak(self):
        for tree in all_labeled_trees(4):
            verdict = classify(
                make_leader_tree_system(tree),
                TreeLeaderSpec(),
                DistributedRelation(),
            )
            assert verdict.is_weak_stabilizing
            assert not verdict.is_self_stabilizing

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(0, 10**6))
    def test_random_trees_weak_under_central(self, n, seed):
        tree = random_tree(n, RandomSource(seed))
        verdict = classify(
            make_leader_tree_system(tree),
            TreeLeaderSpec(),
            CentralRelation(),
        )
        assert verdict.strong_closure
        assert verdict.possible_convergence


class TestFigure2:
    def test_initial_pattern(self):
        system = figure2_system()
        configuration = figure2_initial_configuration(system)
        expected = {
            0: ["A1"], 1: ["A1"], 2: ["A2"], 3: [],
            4: ["A2"], 5: ["A2"], 6: ["A1"], 7: ["A1"],
        }
        for process, names in expected.items():
            enabled = [
                a.name
                for a in system.enabled_actions(configuration, process)
            ]
            assert enabled == names

    def test_initially_no_leader(self):
        system = figure2_system()
        configuration = figure2_initial_configuration(system)
        assert leaders(system, configuration) == []


class TestFigure3Oscillation:
    def test_synchronous_cycle_exists(self, chain4_system):
        oscillations = 0
        for configuration in chain4_system.all_configurations():
            _, lasso = synchronous_lasso(chain4_system, configuration)
            if lasso is not None:
                oscillations += 1
                assert all(
                    not satisfies_lc(chain4_system, c)
                    for c in lasso.cycle_configurations
                )
        assert oscillations > 0

    def test_all_point_left_oscillates(self, chain4_system):
        _, lasso = synchronous_lasso(
            chain4_system, ((0,), (0,), (0,), (0,))
        )
        assert lasso is not None
        assert lasso.cycle_length == 2
