"""Tests for the Hsu–Huang maximal matching portfolio member."""

import pytest

from repro.algorithms.matching import (
    MaximalMatchingSpec,
    is_maximal_matching,
    make_matching_system,
    married_pairs,
)
from repro.core.variables import BOTTOM
from repro.graphs.generators import complete, path, ring, star
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization.classify import classify
from repro.stabilization.witnesses import synchronous_lasso
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system


class TestPredicates:
    def test_married_pairs_mutual_only(self):
        system = make_matching_system(path(3))
        # 0 -> 1, 1 -> 0, 2 -> 1: pair (0,1) married, 2 dangling
        configuration = ((0,), (0,), (0,))
        assert married_pairs(system, configuration) == [(0, 1)]

    def test_married_pairs_empty(self):
        system = make_matching_system(path(3))
        configuration = ((BOTTOM,), (BOTTOM,), (BOTTOM,))
        assert married_pairs(system, configuration) == []

    def test_maximal_on_p2(self):
        system = make_matching_system(path(2))
        assert is_maximal_matching(system, ((0,), (0,)))
        assert not is_maximal_matching(system, ((BOTTOM,), (BOTTOM,)))

    def test_dangling_pointer_not_legitimate(self):
        system = make_matching_system(path(3))
        # 2 points at 1 but 1 is married to 0: dangling
        configuration = ((0,), (0,), (0,))
        assert not is_maximal_matching(system, configuration)

    def test_maximal_p3(self):
        system = make_matching_system(path(3))
        # (0,1) married, 2 unmatched but its only neighbor is matched
        configuration = ((0,), (0,), (BOTTOM,))
        assert is_maximal_matching(system, configuration)

    def test_non_maximal_star(self):
        system = make_matching_system(star(3))
        # nobody matched: hub has unmatched neighbors -> not maximal
        configuration = ((BOTTOM,),) * 4
        assert not is_maximal_matching(system, configuration)


class TestRules:
    def test_accept_prefers_min_index(self):
        system = make_matching_system(star(2))
        # both leaves propose to the hub; hub accepts local index 0
        configuration = ((BOTTOM,), (0,), (0,))
        (action,) = system.enabled_actions(configuration, 0)
        assert action.name == "ACCEPT"
        (branch,) = system.subset_branches(configuration, (0,))
        assert branch.target[0] == (0,)

    def test_propose_only_toward_free_neighbor(self):
        system = make_matching_system(path(3))
        # 0 free; 1 married to 2
        configuration = ((BOTTOM,), (1,), (0,))
        assert not any(
            a.name == "PROPOSE"
            for a in system.enabled_actions(configuration, 0)
        )

    def test_abandon_when_partner_married_elsewhere(self):
        system = make_matching_system(path(3))
        configuration = ((0,), (1,), (0,))  # 0 -> 1, but 1 -> 2 and 2 -> 1
        names = [
            a.name for a in system.enabled_actions(configuration, 0)
        ]
        assert names == ["ABANDON"]
        (branch,) = system.subset_branches(configuration, (0,))
        assert branch.target[0] == (BOTTOM,)

    def test_waits_on_pending_proposal(self):
        system = make_matching_system(path(2))
        # 0 -> 1, 1 free: 0 must wait (no rule), 1 accepts
        configuration = ((0,), (BOTTOM,))
        assert system.enabled_actions(configuration, 0) == ()
        (action,) = system.enabled_actions(configuration, 1)
        assert action.name == "ACCEPT"


class TestStabilization:
    @pytest.mark.parametrize(
        "graph",
        [path(2), path(3), path(4), star(3), ring(4), complete(3)],
        ids=["P2", "P3", "P4", "K13", "C4", "K3"],
    )
    def test_self_stabilizing_under_central(self, graph):
        verdict = classify(
            make_matching_system(graph),
            MaximalMatchingSpec(),
            CentralRelation(),
        )
        assert verdict.is_self_stabilizing

    def test_legitimate_iff_terminal(self):
        system = make_matching_system(path(4))
        spec = MaximalMatchingSpec()
        for configuration in system.all_configurations():
            assert spec.legitimate(
                system, configuration
            ) == system.is_terminal(configuration)

    def test_mutual_proposal_marries_synchronously(self):
        """Unlike coloring, colliding simultaneous moves *help* here: two
        free neighbors proposing to each other get married — so the
        synchronous run from all-⊥ on P2 terminates immediately."""
        system = make_matching_system(path(2))
        trace, lasso = synchronous_lasso(system, ((BOTTOM,), (BOTTOM,)))
        assert lasso is None
        assert trace.final == ((0,), (0,))

    @pytest.mark.parametrize(
        "graph", [path(2), path(4), ring(4)], ids=["P2", "P4", "C4"]
    )
    def test_self_stabilizing_even_synchronously(self, graph):
        """Min-index tie-breaking suffices: no synchronous livelock on
        any tested instance — a genuinely different robustness profile
        from greedy coloring, worth having in the portfolio."""
        verdict = classify(
            make_matching_system(graph),
            MaximalMatchingSpec(),
            SynchronousRelation(),
        )
        assert verdict.is_self_stabilizing

    def test_self_stabilizing_under_distributed(self):
        verdict = classify(
            make_matching_system(path(3)),
            MaximalMatchingSpec(),
            DistributedRelation(),
        )
        assert verdict.is_self_stabilizing

    def test_transformed_still_converges(self):
        """Trans(·) never *breaks* a self-stabilizing input (Theorem 8
        needs only weak stabilization, which self implies)."""
        from repro.markov.builder import build_chain
        from repro.markov.hitting import hitting_summary
        from repro.schedulers.distributions import SynchronousDistribution

        base = make_matching_system(path(2))
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(MaximalMatchingSpec(), base)
        chain = build_chain(transformed, SynchronousDistribution())
        summary = hitting_summary(chain, chain.mark(tspec.legitimate))
        assert summary.converges_with_probability_one
