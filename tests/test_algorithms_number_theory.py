"""Unit + property tests for the m_N number theory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.number_theory import (
    divisors,
    memory_bits,
    smallest_non_divisor,
)
from repro.errors import ReproError


class TestSmallestNonDivisor:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, 2),
            (2, 3),
            (3, 2),
            (4, 3),
            (5, 2),
            (6, 4),  # the paper's example: ring of 6 has m_N = 4
            (7, 2),
            (8, 3),
            (12, 5),
            (24, 5),
            (60, 7),
            (2520, 11),  # lcm(1..10): first non-divisor is 11
        ],
    )
    def test_known_values(self, n, expected):
        assert smallest_non_divisor(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            smallest_non_divisor(0)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=1, max_value=10**6))
    def test_definition(self, n):
        m = smallest_non_divisor(n)
        assert n % m != 0
        assert all(n % k == 0 for k in range(1, m))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=3, max_value=10**6))
    def test_odd_rings_have_m2(self, n):
        if n % 2 == 1:
            assert smallest_non_divisor(n) == 2


class TestMemoryBits:
    @pytest.mark.parametrize(
        "n,bits", [(3, 1), (5, 1), (6, 2), (4, 2), (12, 3), (2520, 4)]
    )
    def test_values(self, n, bits):
        assert memory_bits(n) == bits

    def test_at_least_one_bit(self):
        assert memory_bits(3) == 1


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_square(self):
        assert divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_one(self):
        assert divisors(1) == [1]

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            divisors(0)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=5000))
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert ds[0] == 1 and ds[-1] == n
