"""Tests for Algorithm 1 (token circulation) — Lemmas 4-6, Theorem 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.number_theory import smallest_non_divisor
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    TokenRingAlgorithm,
    count_tokens,
    make_token_ring_system,
    single_token_configuration,
    token_holders,
    two_token_configuration,
)
from repro.core.topology import OrientedRing, Topology
from repro.core.system import System
from repro.errors import ModelError, TopologyError
from repro.graphs.generators import path, ring
from repro.schedulers.relations import DistributedRelation
from repro.stabilization.classify import classify


class TestAlgorithmShape:
    def test_modulus(self):
        assert TokenRingAlgorithm(6).modulus == 4
        assert TokenRingAlgorithm(5).modulus == 2

    def test_ring_size_validation(self):
        with pytest.raises(ModelError):
            TokenRingAlgorithm(2)

    def test_requires_oriented_ring(self):
        algorithm = TokenRingAlgorithm(4)
        with pytest.raises(TopologyError):
            System(algorithm, Topology(ring(4)))

    def test_describe(self):
        system = make_token_ring_system(5)
        assert "deterministic" in system.algorithm.describe()


class TestTokenPredicates:
    def test_enabled_equals_holders(self, ring6_system):
        for configuration in list(ring6_system.all_configurations())[:200]:
            assert list(
                ring6_system.enabled_processes(configuration)
            ) == token_holders(ring6_system, configuration)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=3, max_value=8), st.data())
    def test_lemma4_no_token_free_configuration(self, n, data):
        """Lemma 4: |TokenHolders(γ)| > 0 for every γ (m_N ∤ N)."""
        system = make_token_ring_system(n)
        modulus = smallest_non_divisor(n)
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=modulus - 1),
                min_size=n,
                max_size=n,
            )
        )
        configuration = tuple((v,) for v in values)
        assert count_tokens(system, configuration) >= 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=3, max_value=9), st.data())
    def test_token_parity_invariant_under_steps(self, n, data):
        """Firing one token holder changes the count by 0 or -1... and
        never to zero (Lemma 4 again, dynamically)."""
        system = make_token_ring_system(n)
        modulus = smallest_non_divisor(n)
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=modulus - 1),
                min_size=n,
                max_size=n,
            )
        )
        configuration = tuple((v,) for v in values)
        holders = token_holders(system, configuration)
        before = len(holders)
        mover = data.draw(st.sampled_from(holders))
        (branch,) = system.subset_branches(configuration, (mover,))
        after = count_tokens(system, branch.target)
        assert 1 <= after <= before


class TestSingleTokenConstruction:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_single_token_any_holder(self, n):
        system = make_token_ring_system(n)
        for holder in range(n):
            configuration = single_token_configuration(system, holder)
            assert token_holders(system, configuration) == [holder]

    def test_two_token_even_ring(self):
        system = make_token_ring_system(6)
        configuration = two_token_configuration(system, 0, 3)
        assert token_holders(system, configuration) == [0, 3]

    def test_two_token_various_positions(self):
        system = make_token_ring_system(6)
        for a, b in [(0, 1), (1, 4), (2, 5)]:
            configuration = two_token_configuration(system, a, b)
            assert token_holders(system, configuration) == sorted((a, b))

    def test_two_token_odd_ring_impossible(self):
        """m_N = 2 forces token parity = N parity: no 2-token config on
        odd rings."""
        system = make_token_ring_system(5)
        with pytest.raises(ModelError):
            two_token_configuration(system, 0, 2)

    def test_two_token_same_holder_rejected(self):
        system = make_token_ring_system(6)
        with pytest.raises(ModelError):
            two_token_configuration(system, 2, 2)

    def test_builders_require_token_system(self, two_process_system):
        with pytest.raises((ModelError, TopologyError)):
            single_token_configuration(two_process_system)


class TestLemma6Closure:
    """From a single-token configuration: unique successor, token moves
    to the ring successor."""

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_token_advances(self, n):
        system = make_token_ring_system(n)
        topology = system.topology
        assert isinstance(topology, OrientedRing)
        configuration = single_token_configuration(system, 0)
        holder = 0
        for _ in range(2 * n):
            (branch,) = system.subset_branches(configuration, (holder,))
            configuration = branch.target
            next_holders = token_holders(system, configuration)
            assert next_holders == [topology.successor(holder)]
            holder = next_holders[0]

    def test_all_processes_hold_infinitely_often(self):
        system = make_token_ring_system(5)
        configuration = single_token_configuration(system, 2)
        seen = set()
        for _ in range(10):
            holder = token_holders(system, configuration)[0]
            seen.add(holder)
            (branch,) = system.subset_branches(configuration, (holder,))
            configuration = branch.target
        assert seen == set(range(5))


class TestTheorem2:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_weak_not_self(self, n):
        system = make_token_ring_system(n)
        verdict = classify(
            system, TokenCirculationSpec(), DistributedRelation()
        )
        assert verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing
        assert verdict.behavior_violations == ()

    def test_legitimate_count_is_n_times_m(self):
        for n in (3, 4, 5, 6):
            system = make_token_ring_system(n)
            spec = TokenCirculationSpec()
            count = sum(
                1
                for configuration in system.all_configurations()
                if spec.legitimate(system, configuration)
            )
            assert count == n * smallest_non_divisor(n)
