"""Tests for Algorithm 3 and the greedy-coloring baseline."""

import pytest

from repro.algorithms.coloring import (
    GreedyColoringAlgorithm,
    ProperColoringSpec,
    make_coloring_system,
    monochromatic_edges,
)
from repro.algorithms.two_process import (
    BothTrueSpec,
    TwoProcessAlgorithm,
    make_two_process_system,
)
from repro.core.system import System
from repro.core.topology import Topology
from repro.errors import ModelError, TopologyError
from repro.graphs.generators import complete, path, ring, star
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization.classify import classify
from repro.stabilization.witnesses import synchronous_lasso


class TestTwoProcess:
    def test_requires_two_processes(self):
        with pytest.raises(TopologyError):
            System(TwoProcessAlgorithm(), Topology(path(3)))

    def test_configuration_space(self, two_process_system):
        assert two_process_system.num_configurations() == 4

    def test_guards(self, two_process_system):
        # (F,F): A1 at both; (T,F): A2 at p0 only; (F,T): A2 at p1;
        # (T,T): terminal.
        def names(config, p):
            return [
                a.name
                for a in two_process_system.enabled_actions(config, p)
            ]

        assert names(((False,), (False,)), 0) == ["A1"]
        assert names(((True,), (False,)), 0) == ["A2"]
        assert names(((True,), (False,)), 1) == []
        assert names(((False,), (True,)), 1) == ["A2"]
        assert two_process_system.is_terminal(((True,), (True,)))

    def test_simultaneous_move_converges(self, two_process_system):
        (branch,) = two_process_system.subset_branches(
            ((False,), (False,)), (0, 1)
        )
        assert branch.target == ((True,), (True,))

    def test_solo_move_bounces(self, two_process_system):
        (branch,) = two_process_system.subset_branches(
            ((False,), (False,)), (0,)
        )
        assert branch.target == ((True,), (False,))
        (branch2,) = two_process_system.subset_branches(
            branch.target, (0,)
        )
        assert branch2.target == ((False,), (False,))

    def test_classification_matrix(self, two_process_system):
        spec = BothTrueSpec()
        central = classify(two_process_system, spec, CentralRelation())
        distributed = classify(
            two_process_system, spec, DistributedRelation()
        )
        synchronous = classify(
            two_process_system, spec, SynchronousRelation()
        )
        assert not central.possible_convergence
        assert distributed.is_weak_stabilizing
        assert not distributed.is_self_stabilizing
        assert synchronous.is_self_stabilizing


class TestColoring:
    def test_palette_default(self):
        system = make_coloring_system(star(3))
        assert system.layouts[0].spec("c").size == 4  # Δ+1

    def test_palette_too_small_rejected(self):
        with pytest.raises(ModelError):
            make_coloring_system(star(3), palette_size=2)

    def test_monochromatic_edges(self):
        system = make_coloring_system(path(3))
        assert monochromatic_edges(system, ((0,), (0,), (1,))) == [(0, 1)]
        assert monochromatic_edges(system, ((0,), (1,), (0,))) == []

    def test_fix_picks_minimum_free_color(self):
        system = make_coloring_system(star(3))
        # hub conflicts with leaf colored 0; leaves colored 0,1,2
        configuration = ((0,), (0,), (1,), (2,))
        (branch,) = system.subset_branches(configuration, (0,))
        assert branch.target[0] == (3,)

    def test_proper_coloring_terminal(self):
        system = make_coloring_system(path(3))
        assert system.is_terminal(((0,), (1,), (0,)))

    def test_self_stabilizing_under_central(self):
        for graph in (complete(2), path(3), ring(3)):
            verdict = classify(
                make_coloring_system(graph),
                ProperColoringSpec(),
                CentralRelation(),
            )
            assert verdict.is_self_stabilizing

    def test_synchronous_livelock_on_k2(self, k2_coloring_system):
        _, lasso = synchronous_lasso(k2_coloring_system, ((0,), (0,)))
        assert lasso is not None  # both jump to color 1, then back
        verdict = classify(
            k2_coloring_system,
            ProperColoringSpec(),
            SynchronousRelation(),
        )
        assert not verdict.certain_convergence

    def test_ring4_synchronous_livelock(self):
        system = make_coloring_system(ring(4))
        _, lasso = synchronous_lasso(
            system, ((0,), (0,), (0,), (0,))
        )
        assert lasso is not None
