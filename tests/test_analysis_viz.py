"""Tests for the analysis helpers and the text renderers."""

import math

import pytest

from repro.analysis.stats import SummaryStats, quantile, summarize
from repro.analysis.sweep import SweepPoint, sweep
from repro.analysis.tables import format_kv, format_table
from repro.algorithms.token_ring import (
    make_token_ring_system,
    single_token_configuration,
    token_holders,
)
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.core.simulate import run
from repro.errors import ReproError
from repro.graphs.generators import path
from repro.random_source import RandomSource
from repro.schedulers.samplers import CentralRandomizedSampler
from repro.stabilization.witnesses import synchronous_lasso
from repro.viz.ring_art import render_ring_configuration, render_ring_execution
from repro.viz.trace_render import render_lasso, render_trace
from repro.viz.tree_art import render_enabled_actions, render_parent_pointers


class TestStats:
    def test_quantiles(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 0.25) == 2.0

    def test_quantile_interpolation(self):
        assert quantile([0.0, 1.0], 0.75) == 0.75

    def test_quantile_single(self):
        assert quantile([7.0], 0.9) == 7.0

    def test_quantile_validation(self):
        with pytest.raises(ReproError):
            quantile([], 0.5)
        with pytest.raises(ReproError):
            quantile([1.0], 1.5)

    def test_summarize(self):
        stats = summarize([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert math.isclose(stats.mean, 4.0)
        assert math.isclose(stats.std, 2.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.median == 4.0
        low, high = stats.ci95
        assert low < 4.0 < high

    def test_summarize_single_value(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert stats.ci95_half_width == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_row_is_table_friendly(self):
        row = summarize([1.0, 2.0]).row()
        assert row["count"] == 2


class TestSweep:
    def test_sweep_runs_measure(self):
        points = sweep("n", [1, 2, 3], lambda n: {"square": n * n})
        assert [p.row["square"] for p in points] == [1, 4, 9]

    def test_merged(self):
        point = SweepPoint({"n": 2}, {"v": 5})
        assert point.merged() == {"n": 2, "v": 5}


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": True}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "yes" in text  # booleans rendered yes/no

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_format_table_empty_rejected(self):
        with pytest.raises(ReproError):
            format_table([])

    def test_format_table_inf(self):
        text = format_table([{"x": float("inf")}])
        assert "inf" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "b": False}, title="K")
        assert "alpha : 1" in text
        assert "b" in text and "no" in text

    def test_format_kv_empty_rejected(self):
        with pytest.raises(ReproError):
            format_kv({})


class TestRingArt:
    def test_render_configuration_stars_holder(self):
        system = make_token_ring_system(5)
        configuration = single_token_configuration(system, 2)
        art = render_ring_configuration(
            system, configuration, marked=[2]
        )
        assert "p2:" in art
        assert art.count("*") == 1

    def test_render_execution_labels(self):
        system = make_token_ring_system(5)
        configuration = single_token_configuration(system, 0)
        art = render_ring_execution(
            system,
            [configuration, configuration],
            lambda s, c: token_holders(s, c),
        )
        assert "(i)" in art and "(ii)" in art

    def test_render_execution_custom_labels(self):
        system = make_token_ring_system(5)
        configuration = single_token_configuration(system, 0)
        art = render_ring_execution(
            system, [configuration], lambda s, c: [], labels=["X"]
        )
        assert art.startswith("      X")


class TestTreeArt:
    def test_render_parent_pointers(self):
        system = make_leader_tree_system(path(3))
        text = render_parent_pointers(system, ((0,), (0,), (0,)))
        assert "p0 -> p1" in text
        assert "p2 -> p1" in text

    def test_render_leader(self):
        system = make_leader_tree_system(path(3))
        text = render_parent_pointers(system, ((0,), (None,), (0,)))
        assert "p1 -> LEADER" in text

    def test_render_enabled_actions(self):
        system = make_leader_tree_system(path(3))
        text = render_enabled_actions(system, ((0,), (0,), (0,)))
        assert text.count("p") >= 3


class TestTraceRender:
    def test_render_trace(self):
        system = make_token_ring_system(5)
        trace = run(
            system,
            CentralRandomizedSampler(),
            single_token_configuration(system, 0),
            max_steps=3,
            rng=RandomSource(0),
        )
        text = render_trace(system, trace)
        assert "(init)" in text
        assert "p0:A" in text or "p1:A" in text

    def test_render_trace_truncation(self):
        system = make_token_ring_system(5)
        trace = run(
            system,
            CentralRandomizedSampler(),
            single_token_configuration(system, 0),
            max_steps=10,
            rng=RandomSource(0),
        )
        text = render_trace(system, trace, max_rows=3)
        assert "more)" in text

    def test_render_lasso(self):
        system = make_leader_tree_system(path(4))
        _, lasso = synchronous_lasso(system, ((0,), (0,), (0,), (0,)))
        text = render_lasso(system, lasso)
        assert "cycle (period" in text
        assert "prefix:" in text
