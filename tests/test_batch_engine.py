"""Scalar-vs-batch equivalence and unit tests for the lockstep engine.

The batch engine reproduces the scalar path's sampling *distributions*
(not its random streams), so equivalence is asserted statistically:
seeded runs of both engines on the same sweep point must produce
stabilization-time samples whose empirical distributions agree under a
two-sample Kolmogorov–Smirnov bound, plus matching structural outcomes
(censoring counts, terminal retirement) that are seed-independent.
"""

import numpy as np
import pytest

from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.errors import MarkovError
from repro.graphs.generators import path
from repro.markov.batch import (
    DecodingLegitimacy,
    EnabledCountLegitimacy,
    batch_strategy_for,
    compile_legitimacy,
)
from repro.markov.montecarlo import (
    MonteCarloRunner,
    random_configuration,
    random_configurations,
)
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    BernoulliSampler,
    CentralRandomizedSampler,
    DistributedRandomizedSampler,
    RoundRobinSampler,
    SynchronousSampler,
)
from repro.transformer.coin_toss import (
    TransformedSpec,
    make_transformed_system,
)


def _ks_statistic(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup CDF distance)."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _ks_bound(n: int, m: int, confidence: float = 2.0) -> float:
    """KS acceptance threshold ``c · sqrt((n + m) / (n m))``.

    ``confidence=2.0`` corresponds to α ≈ 0.0007 — runs are seeded, so
    this is a deterministic regression bound, not a flaky gate.
    """
    return confidence * ((n + m) / (n * m)) ** 0.5


def _distribution_cases():
    ring5 = make_token_ring_system(5)
    ring5_spec = TokenCirculationSpec()
    ring6 = make_token_ring_system(6)
    tree5 = make_leader_tree_system(path(5))
    base2 = make_two_process_system()
    trans2 = make_transformed_system(base2)
    trans2_spec = TransformedSpec(BothTrueSpec(), base2)
    return [
        (
            "ring5-central",
            ring5,
            CentralRandomizedSampler(),
            lambda c, s=ring5, sp=ring5_spec: sp.legitimate(s, c),
            EnabledCountLegitimacy(1),
        ),
        (
            "ring6-distributed",
            ring6,
            DistributedRandomizedSampler(),
            lambda c, s=ring6: len(s.enabled_processes(c)) == 1,
            EnabledCountLegitimacy(1),
        ),
        (
            "leader-path5-bernoulli",
            tree5,
            BernoulliSampler(0.7),
            tree5.is_terminal,
            EnabledCountLegitimacy(0),
        ),
        (
            "trans-two-process-synchronous",
            trans2,
            SynchronousSampler(),
            lambda c, s=trans2, sp=trans2_spec: sp.legitimate(s, c),
            None,  # exercise the decoding fallback
        ),
    ]


@pytest.mark.parametrize(
    "name,system,sampler,legitimate,batch_legitimate",
    _distribution_cases(),
    ids=[case[0] for case in _distribution_cases()],
)
def test_stabilization_time_distribution_matches_scalar(
    name, system, sampler, legitimate, batch_legitimate
):
    """Seeded KS-style property: the batch engine's per-trial
    stabilization-time distribution matches the scalar oracle's."""
    scalar_times = _raw_times(system, sampler, legitimate, "scalar")
    batch_times = _raw_times(
        system, sampler, legitimate, "batch", batch_legitimate
    )
    statistic = _ks_statistic(scalar_times, batch_times)
    assert statistic < _ks_bound(len(scalar_times), len(batch_times)), (
        f"{name}: KS statistic {statistic:.4f} exceeds bound"
    )
    scalar_mean = float(np.mean(scalar_times))
    batch_mean = float(np.mean(batch_times))
    scalar_sem = float(np.std(scalar_times) / np.sqrt(len(scalar_times)))
    assert batch_mean == pytest.approx(
        scalar_mean, abs=max(5.0 * scalar_sem, 0.5)
    )


def _raw_times(system, sampler, legitimate, engine, batch_legitimate=None):
    """Raw per-trial stabilization times from one seeded estimate."""
    runner = MonteCarloRunner(system)
    times = []
    if engine == "batch":
        strategy = batch_strategy_for(sampler)
        assert strategy is not None
        engine_obj = runner.batch_engine()
        rng = RandomSource(777)
        codes = engine_obj.encoding.encode_batch(
            random_configurations(system, rng, 600)
        )
        outcome = engine_obj.run(
            strategy,
            compile_legitimacy(
                batch_legitimate
                if batch_legitimate is not None
                else legitimate
            ),
            codes,
            20_000,
            rng.numpy_generator(),
        )
        assert outcome.converged.all()
        times = outcome.stabilization_times
    else:
        from repro.core.simulate import run_until

        rng = RandomSource(888)
        for _ in range(600):
            initial = random_configuration(system, rng)
            result = run_until(
                system,
                sampler,
                initial,
                stop=legitimate,
                max_steps=20_000,
                rng=rng,
                kernel=runner.kernel,
                record=False,
            )
            assert result.converged
            times.append(float(result.steps_taken))
    return times


class TestBatchSamplerStrategies:
    def _enabled_fixture(self):
        generator = np.random.default_rng(5)
        enabled = generator.random((200, 9)) < 0.5
        enabled[(~enabled).all(axis=1), 0] = True  # no empty rows
        return enabled, generator

    def test_synchronous_moves_all_enabled(self):
        enabled, generator = self._enabled_fixture()
        movers = batch_strategy_for(SynchronousSampler()).choose(
            enabled, generator
        )
        assert (movers == enabled).all()

    def test_central_moves_exactly_one_enabled(self):
        enabled, generator = self._enabled_fixture()
        movers = batch_strategy_for(CentralRandomizedSampler()).choose(
            enabled, generator
        )
        assert (movers.sum(axis=1) == 1).all()
        assert (movers & ~enabled).sum() == 0

    def test_distributed_moves_nonempty_enabled_subset(self):
        enabled, generator = self._enabled_fixture()
        movers = batch_strategy_for(DistributedRandomizedSampler()).choose(
            enabled, generator
        )
        assert (movers.sum(axis=1) >= 1).all()
        assert (movers & ~enabled).sum() == 0

    def test_bernoulli_respects_enabledness(self):
        enabled, generator = self._enabled_fixture()
        movers = batch_strategy_for(BernoulliSampler(0.2)).choose(
            enabled, generator
        )
        assert (movers.sum(axis=1) >= 1).all()
        assert (movers & ~enabled).sum() == 0

    def test_central_choice_is_uniform(self):
        """Each of k enabled processes is chosen ≈ 1/k of the time."""
        generator = np.random.default_rng(9)
        enabled = np.zeros((30_000, 6), dtype=bool)
        enabled[:, [1, 3, 4]] = True
        movers = batch_strategy_for(CentralRandomizedSampler()).choose(
            enabled, generator
        )
        frequencies = movers.mean(axis=0)
        assert frequencies[[0, 2, 5]].sum() == 0
        assert np.allclose(frequencies[[1, 3, 4]], 1 / 3, atol=0.01)

    def test_stateful_samplers_have_no_strategy(self):
        assert batch_strategy_for(RoundRobinSampler()) is None


class TestEngineSelection:
    def test_batch_engine_refuses_rounds(self):
        system = make_token_ring_system(4)
        with pytest.raises(MarkovError):
            MonteCarloRunner(system).estimate(
                CentralRandomizedSampler(),
                system.is_terminal,
                trials=5,
                max_steps=100,
                rng=RandomSource(0),
                engine="batch",
                measure_rounds=True,
            )

    def test_batch_engine_refuses_stateful_sampler(self):
        system = make_token_ring_system(4)
        with pytest.raises(MarkovError):
            MonteCarloRunner(system).estimate(
                RoundRobinSampler(),
                system.is_terminal,
                trials=5,
                max_steps=100,
                rng=RandomSource(0),
                engine="batch",
            )

    def test_auto_falls_back_to_scalar_bitwise(self):
        """auto with a round-robin sampler must equal scalar exactly
        (same engine, same random stream)."""
        system = make_token_ring_system(5)
        spec = TokenCirculationSpec()
        kwargs = dict(
            legitimate=lambda c: spec.legitimate(system, c),
            trials=20,
            max_steps=5_000,
        )
        auto = MonteCarloRunner(system).estimate(
            RoundRobinSampler(), rng=RandomSource(6), engine="auto", **kwargs
        )
        scalar = MonteCarloRunner(system).estimate(
            RoundRobinSampler(), rng=RandomSource(6), engine="scalar", **kwargs
        )
        assert auto == scalar

    def test_unknown_engine_rejected(self):
        system = make_token_ring_system(4)
        with pytest.raises(MarkovError):
            MonteCarloRunner(system, engine="warp")
        with pytest.raises(MarkovError):
            MonteCarloRunner(system).estimate(
                CentralRandomizedSampler(),
                system.is_terminal,
                trials=1,
                max_steps=1,
                rng=RandomSource(0),
                engine="warp",
            )

    def test_measure_rounds_auto_uses_scalar(self):
        system = make_token_ring_system(4)
        spec = TokenCirculationSpec()
        result = MonteCarloRunner(system).estimate(
            CentralRandomizedSampler(),
            lambda c: spec.legitimate(system, c),
            trials=10,
            max_steps=5_000,
            rng=RandomSource(4),
            measure_rounds=True,
        )
        assert result.round_stats is not None
        row = result.row()
        assert "round_mean" in row
        assert row["round_mean"] == round(result.round_stats.mean, 4)


class TestBatchStructuralEquivalence:
    def test_censoring_matches_scalar(self):
        """From (False, False) the central scheduler can never reach the
        both-true set — every trial is censored on both engines."""
        system = make_two_process_system()
        spec = BothTrueSpec()
        kwargs = dict(
            legitimate=lambda c: spec.legitimate(system, c),
            trials=20,
            max_steps=50,
            initial_configurations=[((False,), (False,))],
        )
        runner = MonteCarloRunner(system)
        batch = runner.estimate(
            CentralRandomizedSampler(),
            rng=RandomSource(1),
            engine="batch",
            **kwargs,
        )
        scalar = runner.estimate(
            CentralRandomizedSampler(),
            rng=RandomSource(1),
            engine="scalar",
            **kwargs,
        )
        assert batch.censored == scalar.censored == 20
        assert batch.stats is None and scalar.stats is None

    def test_initial_configurations_cycle(self):
        """Explicit initials tile over trials exactly as the scalar path:
        legitimate starts converge at time 0 on both engines."""
        system = make_token_ring_system(5)
        spec = TokenCirculationSpec()
        legitimate_start = next(
            c
            for c in system.all_configurations()
            if spec.legitimate(system, c)
        )
        runner = MonteCarloRunner(system)
        for engine in ("batch", "scalar"):
            result = runner.estimate(
                CentralRandomizedSampler(),
                lambda c: spec.legitimate(system, c),
                trials=7,
                max_steps=10,
                rng=RandomSource(2),
                initial_configurations=[legitimate_start],
                engine=engine,
                batch_legitimate=EnabledCountLegitimacy(1),
            )
            assert result.converged == 7
            assert result.stats.mean == 0.0

    def test_decoding_legitimacy_memoizes(self):
        system = make_token_ring_system(4)
        spec = TokenCirculationSpec()
        calls = []

        def predicate(configuration):
            calls.append(configuration)
            return spec.legitimate(system, configuration)

        runner = MonteCarloRunner(system)
        engine = runner.batch_engine()
        legitimacy = DecodingLegitimacy(predicate)
        codes = engine.encoding.encode_batch(
            [next(system.all_configurations())] * 50
        )
        enabled = engine.tables.enabled(engine.tables.pack(codes))
        verdicts = legitimacy.evaluate(codes, enabled, engine)
        assert verdicts.shape == (50,)
        assert len(calls) == 1  # 49 repeats hit the memo

    def test_batch_runner_reuses_compiled_engine(self):
        system = make_token_ring_system(5)
        runner = MonteCarloRunner(system)
        assert runner.batch_engine() is runner.batch_engine()


class TestRandomConfigurations:
    def test_matches_sequential_singles(self):
        system = make_token_ring_system(5)
        batched = random_configurations(system, RandomSource(9), 10)
        rng = RandomSource(9)
        singles = [random_configuration(system, rng) for _ in range(10)]
        assert batched == singles

    def test_configurations_valid(self):
        system = make_transformed_system(make_token_ring_system(4))
        for configuration in random_configurations(
            system, RandomSource(1), 20
        ):
            system.check_configuration(configuration)
