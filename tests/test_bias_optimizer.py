"""Property tests for the certified optimal-bias synthesis.

The optimizer's contract (see :mod:`repro.analysis.bias`) is not "finds
the optimum" — it is *certification*: every global argmin lies inside
the surviving boxes.  These tests pin the three checkable halves of
that contract on Herman ring-7 variants:

* the certified interval contains the dense-grid argmin;
* region lower bounds sandwich every exactly-solved sample from below
  (and :func:`certified_lower_bound` never exceeds an exact solve
  inside its box);
* refinement monotonically shrinks the maximum surviving width.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.herman_ring import HermanSingleTokenSpec
from repro.algorithms.herman_variants import (
    make_herman_random_bit_system,
    make_herman_random_pass_system,
    make_herman_speed_reducer_system,
)
from repro.analysis.bias import certified_lower_bound, synthesize_optimal_bias
from repro.errors import ModelError
from repro.markov.parametric import ParametricChain
from repro.schedulers.distributions import SynchronousDistribution


@pytest.fixture(scope="module")
def ring7_chain():
    pchain = ParametricChain(
        make_herman_random_pass_system(7), SynchronousDistribution()
    )
    target = pchain.mark(HermanSingleTokenSpec().legitimate)
    return pchain, target


@pytest.fixture(scope="module")
def ring7_synthesis(ring7_chain):
    pchain, target = ring7_chain
    return synthesize_optimal_bias(pchain, target, tolerance=0.02)


class TestCertification:
    def test_interval_contains_dense_grid_argmin(self, ring7_chain, ring7_synthesis):
        pchain, target = ring7_chain
        grid = [{"p": value} for value in np.linspace(0.05, 0.95, 91)]
        values = pchain.hitting_sweep(grid, target, objective="mean")
        argmin = grid[int(np.argmin(values))]
        low, high = ring7_synthesis.interval("p")
        assert low <= argmin["p"] <= high
        assert ring7_synthesis.contains(argmin)
        # The incumbent is an upper bound on the dense-grid minimum only
        # up to grid resolution; it must at least not beat the grid by
        # more than continuity allows at this tolerance.
        assert ring7_synthesis.best_value <= min(values) + 1e-9

    def test_region_bounds_sandwich_sampled_values(self, ring7_synthesis):
        for region in ring7_synthesis.regions:
            assert region.lower_bound <= region.sample_value + 1e-9

    def test_lower_bound_below_exact_solves_inside_box(self, ring7_chain):
        pchain, target = ring7_chain
        lows, highs = {"p": 0.3}, {"p": 0.7}
        bound = certified_lower_bound(pchain, target, lows, highs)
        grid = [{"p": value} for value in np.linspace(0.3, 0.7, 9)]
        values = pchain.hitting_sweep(grid, target, objective="mean")
        assert bound <= min(values) + 1e-9
        assert bound > 0.0

    def test_width_history_monotonically_shrinks(self, ring7_synthesis):
        history = ring7_synthesis.width_history
        assert len(history) >= 3
        assert all(
            later <= earlier
            for earlier, later in zip(history, history[1:])
        )
        assert history[-1] <= 0.02 + 1e-12

    def test_symmetric_dynamics_keep_fair_coin_certified(
        self, ring7_synthesis
    ):
        # Random-pass is p ↔ 1−p symmetric: the fair coin is optimal and
        # must survive every pruning round.
        assert ring7_synthesis.contains({"p": 0.5})
        assert ring7_synthesis.best_assignment["p"] == pytest.approx(
            0.5, abs=0.02
        )


class TestRefinementMechanics:
    def test_random_bit_agrees_with_random_pass_at_fair_coin(self):
        # Both variants collapse to classic Herman at p = 1/2.
        spec = HermanSingleTokenSpec()
        results = []
        for build in (
            make_herman_random_bit_system,
            make_herman_random_pass_system,
        ):
            pchain = ParametricChain(build(7), SynchronousDistribution())
            target = pchain.mark(spec.legitimate)
            results.append(
                pchain.hitting_sweep([{"p": 0.5}], target, "mean")[0]
            )
        assert results[0] == pytest.approx(results[1], rel=1e-12)

    def test_bounds_override_narrows_the_search_box(self, ring7_chain):
        pchain, target = ring7_chain
        result = synthesize_optimal_bias(
            pchain,
            target,
            tolerance=0.05,
            bounds={"p": (0.4, 0.6)},
        )
        low, high = result.interval("p")
        assert 0.4 <= low <= high <= 0.6

    def test_invalid_bounds_rejected(self, ring7_chain):
        pchain, target = ring7_chain
        with pytest.raises(ModelError):
            synthesize_optimal_bias(
                pchain, target, bounds={"p": (0.0, 0.5)}
            )

    def test_non_parametric_chain_rejected(self):
        from repro.algorithms.herman_ring import make_herman_system

        pchain = ParametricChain(
            make_herman_system(5), SynchronousDistribution()
        )
        target = pchain.mark(HermanSingleTokenSpec().legitimate)
        with pytest.raises(ModelError):
            synthesize_optimal_bias(pchain, target)

    def test_two_coin_synthesis_certifies_its_own_best(self):
        pchain = ParametricChain(
            make_herman_speed_reducer_system(5), SynchronousDistribution()
        )
        target = pchain.mark(HermanSingleTokenSpec().legitimate)
        result = synthesize_optimal_bias(
            pchain, target, tolerance=0.2, max_regions=32
        )
        assert result.param_names == ("p", "q")
        assert result.contains(result.best_assignment)
        for region in result.regions:
            assert region.lower_bound <= result.best_value + 1e-9
        # The asymmetric reducer beats the all-fair default.
        default_value = pchain.hitting_sweep(
            [pchain.default_assignment], target, "mean"
        )[0]
        assert result.best_value < default_value
