"""Tests for k-bounded fairness and round counting."""

import pytest

from repro.algorithms.token_ring import (
    make_token_ring_system,
    single_token_configuration,
    token_holders,
    two_token_configuration,
)
from repro.algorithms.two_process import make_two_process_system
from repro.analysis.rounds import count_rounds, round_boundaries
from repro.core.simulate import run
from repro.core.trace import Step, Trace, lasso_from_trace
from repro.random_source import RandomSource
from repro.schedulers.bounded_fairness import (
    is_k_fair_lasso,
    k_fairness_bound,
    k_fairness_violations,
)
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    ScriptedSampler,
    SynchronousSampler,
)


def _alternating_token_lasso(system):
    configuration = two_token_configuration(system, 0, 3)
    trace = Trace.starting_at(configuration)
    seen = {configuration: 0}
    last_moved = None
    while True:
        holders = token_holders(system, configuration)
        mover = holders[0]
        if last_moved is not None:
            follower = system.topology.successor(last_moved)
            if follower in holders:
                mover = next(h for h in holders if h != follower)
        (branch,) = system.subset_branches(configuration, (mover,))
        trace.append(Step(branch.moves), branch.target)
        configuration = branch.target
        last_moved = mover
        if configuration in seen:
            return lasso_from_trace(trace, seen[configuration])
        seen[configuration] = trace.length


def _solo_p0_lasso():
    system = make_two_process_system()
    configuration = ((False,), (False,))
    trace = Trace.starting_at(configuration)
    seen = {configuration: 0}
    while True:
        (branch,) = system.subset_branches(configuration, (0,))
        trace.append(Step(branch.moves), branch.target)
        configuration = branch.target
        if configuration in seen:
            return system, lasso_from_trace(trace, seen[configuration])
        seen[configuration] = trace.length


class TestKFairness:
    @pytest.fixture(scope="class")
    def witness(self):
        system = make_token_ring_system(6)
        return system, _alternating_token_lasso(system)

    def test_bound_is_finite(self, witness):
        system, lasso = witness
        bound = k_fairness_bound(system, lasso)
        assert bound is not None

    def test_alternating_tokens_are_n_minus_1_fair(self, witness):
        """The Theorem 6 witness lives in [3]'s (N−1)-fair world."""
        system, lasso = witness
        assert is_k_fair_lasso(system, lasso, system.num_processes - 1)

    def test_bound_tightness(self, witness):
        system, lasso = witness
        bound = k_fairness_bound(system, lasso)
        assert is_k_fair_lasso(system, lasso, bound)
        assert not is_k_fair_lasso(system, lasso, bound - 1)

    def test_violations_empty_at_bound(self, witness):
        system, lasso = witness
        bound = k_fairness_bound(system, lasso)
        assert k_fairness_violations(system, lasso, bound) == []
        assert k_fairness_violations(system, lasso, bound - 1)

    def test_starved_process_unbounded(self):
        system, lasso = _solo_p0_lasso()
        assert k_fairness_bound(system, lasso) is None
        assert not is_k_fair_lasso(system, lasso, 10**6)
        violations = k_fairness_violations(system, lasso, 5)
        assert (1, -1, -1) in violations  # p1 starved marker


class TestRounds:
    def test_synchronous_steps_are_rounds(self):
        system = make_token_ring_system(5)
        initial = next(system.all_configurations())
        trace = run(
            system,
            SynchronousSampler(),
            initial,
            max_steps=6,
            rng=RandomSource(0),
        )
        assert count_rounds(system, trace) == trace.length

    def test_empty_trace_zero_rounds(self):
        system = make_two_process_system()
        trace = Trace.starting_at(((True,), (True,)))
        assert count_rounds(system, trace) == 0

    def test_central_round_needs_all_enabled(self):
        """With two enabled processes and a central scheduler, one round
        takes two steps unless the first step disables the other."""
        system = make_token_ring_system(6)
        configuration = two_token_configuration(system, 0, 3)
        sampler = ScriptedSampler([(0,), (3,)])
        trace = run(
            system, sampler, configuration, max_steps=2, rng=RandomSource(0)
        )
        boundaries = round_boundaries(system, trace)
        assert boundaries == [2]

    def test_round_ends_when_pending_disabled(self):
        """Algorithm 3 from (F,F): p0 alone moves to (T,F), which
        *disables* p1 — the round completes without p1 acting."""
        system = make_two_process_system()
        sampler = ScriptedSampler([(0,)])
        trace = run(
            system,
            sampler,
            ((False,), (False,)),
            max_steps=1,
            rng=RandomSource(0),
        )
        assert round_boundaries(system, trace) == [1]

    def test_single_token_round_is_single_step(self):
        system = make_token_ring_system(5)
        initial = single_token_configuration(system, 0)
        trace = run(
            system,
            CentralRandomizedSampler(),
            initial,
            max_steps=5,
            rng=RandomSource(1),
        )
        assert count_rounds(system, trace) == 5

    def test_partial_round_not_counted(self):
        system = make_token_ring_system(6)
        configuration = two_token_configuration(system, 0, 3)
        sampler = ScriptedSampler([(0,)])
        trace = run(
            system, sampler, configuration, max_steps=1, rng=RandomSource(0)
        )
        # process 3 is still enabled and has not acted: round incomplete
        assert round_boundaries(system, trace) == []
