"""The campaign tier: expansion, seed flow, caching, resume, CLI.

Byte-identity is the organizing assertion: a campaign's store must be
a pure function of its :class:`~repro.campaign.CampaignSelection`, so
cache hits, resumes, worker counts, and degradation paths all compare
equal at the file-bytes level — not merely at the statistics level.
Crash *injection* (killed workers, corrupted files, torn checkpoints)
lives in ``tests/test_campaign_crash.py``; this module covers the
healthy paths and the streaming-emission plumbing they ride on.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignSelection,
    build_sweep_spec,
    execute_shard,
    expand_selection,
    family_ids,
    resume_campaign,
    run_campaign,
    store_report,
)
from repro.campaign.runner import MANIFEST_NAME
from repro.errors import CampaignError
from repro.experiments.cli import main
from repro.experiments.registry import campaign_family_ids
from repro.random_source import RandomSource
from repro.store.columnar import ResultStore, shard_key

SELECTION = CampaignSelection(
    families=("Q1",),
    sizes=(3,),
    trials=8,
    shard_trials=3,
    max_steps=20_000,
    seed=5,
)

SEQUENTIAL = CampaignConfig(sequential=True)


def store_bytes(root) -> dict[str, bytes]:
    """Every shard file's bytes, keyed by content address."""
    store = ResultStore(root)
    return {
        key: store.path_for(key).read_bytes() for key in store.keys()
    }


# ----------------------------------------------------------------------
# expansion and the seed flow
# ----------------------------------------------------------------------
def test_family_registry():
    assert family_ids() == ("Q1", "Q3", "FT1")
    assert campaign_family_ids() == family_ids()


def test_expansion_is_deterministic():
    first = expand_selection(SELECTION)
    second = expand_selection(SELECTION)
    assert [shard.key for shard in first] == [shard.key for shard in second]
    assert [shard.meta for shard in first] == [shard.meta for shard in second]


def test_expansion_shapes_and_trial_blocks():
    shards = expand_selection(SELECTION)
    assert len(shards) == 3  # ceil(8 / 3)
    assert [shard.meta["trials"] for shard in shards] == [3, 3, 2]
    assert [shard.meta["trial_offset"] for shard in shards] == [0, 3, 6]
    assert len({shard.key for shard in shards}) == len(shards)
    for shard in shards:
        assert shard.key == shard_key(shard.meta)
        json.dumps(shard.meta)  # plain JSON: shippable to any worker


def test_hierarchical_seed_flow():
    selection = CampaignSelection(
        families=("Q1", "FT1"), sizes=(3, 4), trials=4, shard_trials=2
    )
    master = RandomSource(selection.seed)
    for shard in expand_selection(selection):
        expected = (
            master.spawn(shard.meta["point"])
            .spawn(shard.meta["shard"])
            .seed
        )
        assert shard.meta["seed"] == expected


def test_expansion_validation():
    with pytest.raises(CampaignError, match="family"):
        expand_selection(CampaignSelection(families=("NOPE",)))
    with pytest.raises(CampaignError, match="family"):
        expand_selection(CampaignSelection(families=()))
    with pytest.raises(CampaignError, match="size"):
        expand_selection(CampaignSelection(sizes=()))
    with pytest.raises(CampaignError, match="trial"):
        expand_selection(CampaignSelection(trials=0))
    with pytest.raises(CampaignError, match="shard_trials"):
        expand_selection(CampaignSelection(shard_trials=0))


def test_selection_round_trips_through_json():
    payload = json.loads(json.dumps(SELECTION.as_dict()))
    assert CampaignSelection.from_dict(payload) == SELECTION


def test_build_sweep_spec_from_coordinates():
    shard = expand_selection(SELECTION)[1]
    spec = build_sweep_spec(shard.meta)
    assert spec.trials == 3
    assert spec.seed == shard.meta["seed"]
    assert spec.max_steps == SELECTION.max_steps
    assert spec.label == "Q1-n3-s1"
    assert spec.fault is None
    ft1 = expand_selection(
        CampaignSelection(families=("FT1",), sizes=(4,), trials=2,
                          shard_trials=2)
    )[0]
    assert build_sweep_spec(ft1.meta).fault is not None


def test_execute_shard_writes_validated_bytes(tmp_path):
    shard = expand_selection(SELECTION)[0]
    key = execute_shard(tmp_path, shard.meta)
    assert key == shard.key
    records, meta = ResultStore(tmp_path).read(key)
    assert meta == shard.meta
    assert len(records) == shard.meta["trials"]
    assert list(records["trial"]) == [0, 1, 2]


# ----------------------------------------------------------------------
# the runner: caching, resume, reporting
# ----------------------------------------------------------------------
def test_run_campaign_sequential_and_cache_hits(tmp_path):
    report = run_campaign(tmp_path, SELECTION, SEQUENTIAL)
    assert report.total == 3
    assert report.completed == 3
    assert report.executed == 3
    assert report.cached == 0
    reference = store_bytes(tmp_path)

    again = run_campaign(tmp_path, SELECTION, SEQUENTIAL)
    assert again.cached == 3
    assert again.executed == 0
    assert store_bytes(tmp_path) == reference


def test_manifest_checkpoints_selection_and_keys(tmp_path):
    run_campaign(tmp_path, SELECTION, SEQUENTIAL)
    payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert payload["version"] == 1
    assert CampaignSelection.from_dict(payload["selection"]) == SELECTION
    assert payload["completed"] == sorted(
        shard.key for shard in expand_selection(SELECTION)
    )


def test_resume_regenerates_only_missing_shards(tmp_path):
    run_campaign(tmp_path, SELECTION, SEQUENTIAL)
    reference = store_bytes(tmp_path)
    manifest_reference = (tmp_path / MANIFEST_NAME).read_bytes()

    victim = expand_selection(SELECTION)[1]
    ResultStore(tmp_path).path_for(victim.key).unlink()

    report = resume_campaign(tmp_path, SEQUENTIAL)
    assert report.cached == 2
    assert report.executed == 1
    assert store_bytes(tmp_path) == reference
    assert (tmp_path / MANIFEST_NAME).read_bytes() == manifest_reference


def test_resume_without_manifest_raises(tmp_path):
    with pytest.raises(CampaignError, match="manifest"):
        resume_campaign(tmp_path)


def test_workers_match_sequential_byte_for_byte(tmp_path):
    selection = CampaignSelection(
        families=("Q1", "FT1"),
        sizes=(3, 4),
        trials=4,
        shard_trials=2,
        max_steps=20_000,
        seed=9,
    )
    run_campaign(tmp_path / "seq", selection, SEQUENTIAL)
    report = run_campaign(
        tmp_path / "par", selection, CampaignConfig(workers=2)
    )
    assert report.worker_deaths == 0
    assert store_bytes(tmp_path / "par") == store_bytes(tmp_path / "seq")
    assert (tmp_path / "par" / MANIFEST_NAME).read_bytes() == (
        tmp_path / "seq" / MANIFEST_NAME
    ).read_bytes()


def test_store_report_aggregates_per_point(tmp_path):
    selection = CampaignSelection(
        families=("Q1", "FT1"),
        sizes=(3,),
        trials=4,
        shard_trials=2,
        max_steps=20_000,
    )
    run_campaign(tmp_path, selection, SEQUENTIAL)
    rows = store_report(tmp_path)
    assert [(row["family"], row["N"]) for row in rows] == [
        ("FT1", 3),
        ("Q1", 3),
    ]
    for row in rows:
        assert row["trials"] == 4
        assert row["converged"] + row["timed_out"] <= row["trials"]
    # The faulted family reports recovery; the fault-free one does not.
    assert "mean_recovery" in rows[0]
    assert "mean_recovery" not in rows[1]
    assert store_report(tmp_path / "empty") == []


# ----------------------------------------------------------------------
# CLI verb
# ----------------------------------------------------------------------
def test_cli_campaign_run_resume_report(tmp_path, capsys):
    root = str(tmp_path / "campaign")
    argv = [
        "campaign", root,
        "--families", "Q1",
        "--sizes", "3",
        "--trials", "4",
        "--shard-trials", "2",
        "--max-steps", "20000",
        "--sequential",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign complete: 2/2" in out
    assert "executed=2" in out

    assert main(["campaign", root, "--resume", "--sequential"]) == 0
    assert "cached=2" in capsys.readouterr().out

    assert main(["campaign", root, "--report"]) == 0
    report_out = capsys.readouterr().out
    assert "family=Q1" in report_out
    assert "N=3" in report_out

    assert main(["campaign", str(tmp_path / "void"), "--report"]) == 0
    assert "empty" in capsys.readouterr().out


# ----------------------------------------------------------------------
# streaming emission (the sink/keep_samples plumbing campaigns ride on)
# ----------------------------------------------------------------------
def _sweep_points():
    from repro.markov.sweep_engine import SweepPointSpec
    from repro.markov.batch import EnabledCountLegitimacy
    from repro.algorithms.token_ring import (
        TokenCirculationSpec,
        make_token_ring_system,
    )
    from repro.schedulers.samplers import SynchronousSampler
    from repro.transformer.coin_toss import (
        TransformedSpec,
        make_transformed_system,
    )

    base = make_token_ring_system(4)
    system = make_transformed_system(base)
    tspec = TransformedSpec(TokenCirculationSpec(), base)
    return [
        SweepPointSpec(
            system=system,
            sampler=SynchronousSampler(),
            legitimate=lambda cfg: tspec.legitimate(system, cfg),
            trials=6,
            max_steps=20_000,
            seed=31 + index,
            batch_legitimate=EnabledCountLegitimacy(1),
            label=f"point-{index}",
        )
        for index in range(2)
    ]


def test_sink_emission_matches_results():
    from repro.markov.sweep_engine import SweepRunner

    emitted = []
    results = SweepRunner().run(_sweep_points(), sink=emitted.append)
    assert [outcome.point for outcome in emitted] == [0, 1]
    assert [outcome.label for outcome in emitted] == ["point-0", "point-1"]
    for outcome, result in zip(emitted, results):
        assert int(outcome.converged.sum()) == result.converged
        assert outcome.trials == result.converged + result.censored
        converged_times = outcome.times[outcome.converged]
        assert float(converged_times.mean()) == pytest.approx(
            result.stats.mean
        )


def test_keep_samples_false_drops_samples_not_stats():
    from repro.markov.sweep_engine import SweepRunner

    runner = SweepRunner()
    kept = runner.run(_sweep_points())
    dropped = runner.run(_sweep_points(), keep_samples=False)
    for full, lean in zip(kept, dropped):
        assert full.samples  # baseline still carries them
        assert lean.samples is None
        assert lean.converged == full.converged
        assert lean.stats.mean == full.stats.mean
        assert lean.stats.std == full.stats.std


def test_sink_and_keep_samples_do_not_perturb_streams():
    from repro.markov.sweep_engine import SweepRunner

    plain = SweepRunner().run(_sweep_points())
    streamed = SweepRunner().run(
        _sweep_points(), sink=lambda outcome: None, keep_samples=False
    )
    for reference, observed in zip(plain, streamed):
        assert observed.stats.mean == reference.stats.mean
        assert observed.converged == reference.converged
