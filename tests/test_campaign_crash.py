"""Crash-scenario harness: the campaign survives everything we throw.

Fault injection against the full runner, asserting the PR's central
property each time — *an interrupted-then-recovered campaign's store is
byte-identical to an uninterrupted run's*:

* workers SIGKILLed mid-shard (plus torn ``*.tmp`` droppings);
* shard files truncated or bit-flipped on disk between runs;
* the checkpoint manifest torn out of sync with the store in either
  direction (shard written but manifest stale, manifest claiming a
  shard the store lost);
* workers hanging past the shard timeout;
* enough worker deaths to trip degradation to in-process execution.

Injection relies on the ``fork`` start method: ``monkeypatch`` applied
in the parent is inherited by worker children, and a ``parent_pid``
guard keeps the sabotage inside the children (the in-process recovery
paths run the real implementation).
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import signal
import time

import pytest

import repro.campaign.runner as runner
from repro.campaign import (
    CampaignConfig,
    CampaignSelection,
    expand_selection,
    run_campaign,
    resume_campaign,
)
from repro.campaign.runner import MANIFEST_NAME, _write_manifest
from repro.store.columnar import ResultStore, shard_key

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection needs fork-inherited monkeypatches",
)

SELECTION = CampaignSelection(
    families=("Q1",),
    sizes=(3,),
    trials=4,
    shard_trials=2,
    max_steps=20_000,
    seed=7,
)

#: Fast supervision for tests: short timeouts, near-zero backoff.
FAST = dict(shard_timeout=20.0, backoff_base=0.01)


def store_bytes(root) -> dict[str, bytes]:
    store = ResultStore(root)
    return {
        key: store.path_for(key).read_bytes() for key in store.keys()
    }


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory) -> dict[str, bytes]:
    """The uninterrupted run every scenario must reproduce exactly."""
    root = tmp_path_factory.mktemp("clean")
    run_campaign(root, SELECTION, CampaignConfig(sequential=True))
    return {
        "shards": store_bytes(root),
        "manifest": (root / MANIFEST_NAME).read_bytes(),
    }


def install_killer(
    monkeypatch,
    markers: pathlib.Path,
    *,
    always: bool = False,
    torn_tmp: bool = False,
) -> None:
    """SIGKILL each shard's worker mid-execution (children only).

    With ``always=False`` every shard dies exactly once (marker files
    track first attempts across processes), so retries succeed; with
    ``always=True`` no child ever survives — the degradation trigger.
    ``torn_tmp`` additionally leaves a half-written ``*.tmp`` file, the
    dropping an atomic write interrupted mid-copy would leave.
    """
    parent_pid = os.getpid()
    original = runner.execute_shard

    def sabotaged(root, meta):
        key = shard_key(meta)
        marker = markers / key
        if os.getpid() != parent_pid and (always or not marker.exists()):
            marker.write_text("died here")
            if torn_tmp:
                store = ResultStore(root)
                (store.shards_dir / f"{key}.shard.tmp").write_bytes(
                    b"torn mid-write"
                )
            os.kill(os.getpid(), signal.SIGKILL)
        return original(root, meta)

    monkeypatch.setattr(runner, "execute_shard", sabotaged)


# ----------------------------------------------------------------------
# killed workers
# ----------------------------------------------------------------------
def test_sigkilled_workers_retry_to_byte_identical_store(
    tmp_path, monkeypatch, clean_reference
):
    install_killer(monkeypatch, tmp_path / "markers")
    (tmp_path / "markers").mkdir()
    report = run_campaign(
        tmp_path / "run",
        SELECTION,
        CampaignConfig(workers=2, max_retries=2, max_worker_deaths=50,
                       **FAST),
    )
    assert report.worker_deaths == 2  # one death per shard
    assert report.retries == 2
    assert report.completed == 2
    assert store_bytes(tmp_path / "run") == clean_reference["shards"]
    assert (tmp_path / "run" / MANIFEST_NAME).read_bytes() == (
        clean_reference["manifest"]
    )


def test_torn_tmp_droppings_are_swept_on_resume(
    tmp_path, monkeypatch, clean_reference
):
    install_killer(monkeypatch, tmp_path / "markers", torn_tmp=True)
    (tmp_path / "markers").mkdir()
    root = tmp_path / "run"
    run_campaign(
        root,
        SELECTION,
        CampaignConfig(workers=1, max_retries=2, max_worker_deaths=50,
                       **FAST),
    )
    # The kills left their mid-write droppings behind...
    assert list(ResultStore(root).shards_dir.glob("*.tmp"))
    messages: list[str] = []
    report = resume_campaign(
        root, CampaignConfig(sequential=True), progress=messages.append
    )
    # ...which resume sweeps before trusting the directory.
    assert any("swept 2" in message for message in messages)
    assert not list(ResultStore(root).shards_dir.glob("*.tmp"))
    assert report.cached == 2
    assert store_bytes(root) == clean_reference["shards"]


# ----------------------------------------------------------------------
# corrupted files
# ----------------------------------------------------------------------
def test_corrupt_shards_quarantined_and_regenerated(
    tmp_path, clean_reference
):
    run_campaign(tmp_path, SELECTION, CampaignConfig(sequential=True))
    store = ResultStore(tmp_path)
    truncated, flipped = expand_selection(SELECTION)
    path = store.path_for(truncated.key)
    path.write_bytes(path.read_bytes()[:-20])
    path = store.path_for(flipped.key)
    damaged = bytearray(path.read_bytes())
    damaged[len(damaged) // 2] ^= 0x10
    path.write_bytes(bytes(damaged))

    report = run_campaign(
        tmp_path, SELECTION, CampaignConfig(sequential=True)
    )
    assert report.quarantined == 2
    assert report.executed == 2
    assert len(list(store.quarantine_dir.iterdir())) == 2
    assert store_bytes(tmp_path) == clean_reference["shards"]
    assert (tmp_path / MANIFEST_NAME).read_bytes() == (
        clean_reference["manifest"]
    )


# ----------------------------------------------------------------------
# torn checkpoints (interrupts between shard write and manifest write)
# ----------------------------------------------------------------------
def test_manifest_behind_store_resumes_from_bytes(
    tmp_path, clean_reference
):
    run_campaign(tmp_path, SELECTION, CampaignConfig(sequential=True))
    # Crash window: shards landed, but the checkpoint never recorded
    # them.  The store is ground truth, so resume costs zero re-runs.
    _write_manifest(tmp_path, SELECTION, set())
    report = resume_campaign(tmp_path, CampaignConfig(sequential=True))
    assert report.cached == 2
    assert report.executed == 0
    assert (tmp_path / MANIFEST_NAME).read_bytes() == (
        clean_reference["manifest"]
    )


def test_manifest_ahead_of_store_regenerates(tmp_path, clean_reference):
    run_campaign(tmp_path, SELECTION, CampaignConfig(sequential=True))
    # Inverse window: the manifest claims a shard the store lost.  The
    # claim is advisory — only validated bytes count as done.
    victim = expand_selection(SELECTION)[0]
    ResultStore(tmp_path).path_for(victim.key).unlink()
    report = resume_campaign(tmp_path, CampaignConfig(sequential=True))
    assert report.cached == 1
    assert report.executed == 1
    assert store_bytes(tmp_path) == clean_reference["shards"]
    assert (tmp_path / MANIFEST_NAME).read_bytes() == (
        clean_reference["manifest"]
    )


# ----------------------------------------------------------------------
# hangs and degradation
# ----------------------------------------------------------------------
def test_hung_worker_times_out_then_runs_in_process(
    tmp_path, monkeypatch, clean_reference
):
    parent_pid = os.getpid()
    original = runner.execute_shard

    def hang_in_children(root, meta):
        if os.getpid() != parent_pid:
            time.sleep(60)
        return original(root, meta)

    monkeypatch.setattr(runner, "execute_shard", hang_in_children)
    selection = CampaignSelection(
        families=("Q1",), sizes=(3,), trials=2, shard_trials=2,
        max_steps=20_000, seed=7,
    )
    report = run_campaign(
        tmp_path,
        selection,
        CampaignConfig(workers=1, shard_timeout=0.3, max_retries=1,
                       max_worker_deaths=50, backoff_base=0.01),
    )
    assert report.worker_deaths == 2  # first attempt + one retry
    assert report.retries == 1
    assert report.in_process == 1  # retries exhausted → guaranteed run
    assert report.completed == 1
    key = expand_selection(selection)[0].key
    assert ResultStore(tmp_path).load(key) is not None


def test_repeated_deaths_degrade_to_sequential(
    tmp_path, monkeypatch, clean_reference
):
    install_killer(monkeypatch, tmp_path / "markers", always=True)
    (tmp_path / "markers").mkdir()
    with pytest.warns(RuntimeWarning, match="degrading"):
        report = run_campaign(
            tmp_path / "run",
            SELECTION,
            CampaignConfig(workers=2, max_retries=5, max_worker_deaths=1,
                           **FAST),
        )
    assert report.degraded
    assert report.worker_deaths >= 1
    assert report.in_process == 2  # the drain finished everything
    assert store_bytes(tmp_path / "run") == clean_reference["shards"]
    assert (tmp_path / "run" / MANIFEST_NAME).read_bytes() == (
        clean_reference["manifest"]
    )
