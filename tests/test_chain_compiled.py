"""Compiled-vs-scalar chain equivalence: the PR 4 oracle contract.

The compiled wire-format builder (``build_chain(engine="compiled")``)
must reproduce the dict-walk oracle (``engine="scalar"``) exactly: same
state list in the same order, row probabilities equal to ≤ 1e-12
(bit-for-bit in practice), and identical downstream verdicts
(``hitting_summary``, ``classify_probabilistic``) — across topologies,
scheduler distributions, deterministic and probabilistic systems, and
both full-space and restricted-initial modes.  Also covers the
CSR-native :class:`MarkovChain` surface: cached matrix exports, the lazy
``rows`` view, and vectorized ``mark`` predicates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.herman_ring import HermanSingleTokenSpec, make_herman_system
from repro.algorithms.leader_tree import TreeLeaderSpec, make_leader_tree_system
from repro.algorithms.token_ring import TokenCirculationSpec, make_token_ring_system
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.errors import MarkovError
from repro.graphs.generators import figure3_chain, star
from repro.markov.batch import DecodingLegitimacy, EnabledCountLegitimacy
from repro.markov.builder import CHAIN_ENGINES, build_chain
from repro.markov.hitting import hitting_summary
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
    SynchronousDistribution,
)
from repro.stabilization.probabilistic import classify_probabilistic
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system

#: Probability agreement demanded of the compiled path, per entry.
TOLERANCE = 1e-12

SYSTEMS = {
    "ring5": lambda: make_token_ring_system(5),
    "chain4": lambda: make_leader_tree_system(figure3_chain()),
    "star3": lambda: make_leader_tree_system(star(3)),
    "two-process": lambda: make_two_process_system(),
    "herman5": lambda: make_herman_system(5),
    "trans(two-process)": lambda: make_transformed_system(
        make_two_process_system()
    ),
}

DISTRIBUTIONS = {
    "central": CentralRandomizedDistribution,
    "synchronous": SynchronousDistribution,
    "distributed": DistributedRandomizedDistribution,
    "bernoulli-lazy": lambda: BernoulliDistribution(0.5, True),
    "bernoulli-strict": lambda: BernoulliDistribution(0.3, False),
}


def assert_chains_equivalent(scalar, compiled):
    assert scalar.states == compiled.states
    assert scalar.scheduler_name == compiled.scheduler_name
    assert len(scalar.rows) == len(compiled.rows)
    for row_scalar, row_compiled in zip(scalar.rows, compiled.rows):
        assert set(row_scalar) == set(row_compiled)
        for target, probability in row_scalar.items():
            assert row_compiled[target] == pytest.approx(
                probability, abs=TOLERANCE
            )


@pytest.mark.parametrize("distribution_name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
def test_full_space_equivalence(system_name, distribution_name):
    system = SYSTEMS[system_name]()
    make_distribution = DISTRIBUTIONS[distribution_name]
    scalar = build_chain(system, make_distribution(), engine="scalar")
    compiled = build_chain(system, make_distribution(), engine="compiled")
    assert_chains_equivalent(scalar, compiled)


@pytest.mark.parametrize("distribution_name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize(
    "system_name", ["ring5", "two-process", "herman5", "trans(two-process)"]
)
def test_restricted_initial_equivalence(system_name, distribution_name):
    system = SYSTEMS[system_name]()
    make_distribution = DISTRIBUTIONS[distribution_name]
    initial = [next(iter(system.all_configurations()))]
    scalar = build_chain(
        system, make_distribution(), initial=initial, engine="scalar"
    )
    compiled = build_chain(
        system, make_distribution(), initial=initial, engine="compiled"
    )
    assert_chains_equivalent(scalar, compiled)
    # The forward closure must be a strict restriction, not the full
    # space, for this test to exercise the BFS interning path.
    assert compiled.num_states <= system.num_configurations()


def test_auto_engine_matches_both(ring5_system):
    auto = build_chain(ring5_system, CentralRandomizedDistribution())
    scalar = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )
    assert_chains_equivalent(scalar, auto)


@pytest.mark.parametrize(
    "system_name, spec",
    [
        ("ring5", TokenCirculationSpec()),
        ("chain4", TreeLeaderSpec()),
        ("herman5", HermanSingleTokenSpec()),
    ],
)
@pytest.mark.parametrize("distribution_name", ["central", "synchronous"])
def test_downstream_hitting_verdicts_identical(
    system_name, spec, distribution_name
):
    system = SYSTEMS[system_name]()
    make_distribution = DISTRIBUTIONS[distribution_name]
    summaries = []
    for engine in ("scalar", "compiled"):
        chain = build_chain(system, make_distribution(), engine=engine)
        summaries.append(hitting_summary(chain, chain.mark(spec.legitimate)))
    scalar_summary, compiled_summary = summaries
    assert (
        scalar_summary.converges_with_probability_one
        == compiled_summary.converges_with_probability_one
    )
    assert scalar_summary.num_target == compiled_summary.num_target
    assert compiled_summary.min_absorption == pytest.approx(
        scalar_summary.min_absorption, abs=1e-9
    )
    assert compiled_summary.mean_expected_steps == pytest.approx(
        scalar_summary.mean_expected_steps, rel=1e-9
    )
    assert compiled_summary.worst_expected_steps == pytest.approx(
        scalar_summary.worst_expected_steps, rel=1e-9
    )


def test_downstream_classify_verdicts_identical(two_process_system):
    transformed = make_transformed_system(two_process_system)
    spec = TransformedSpec(BothTrueSpec(), two_process_system)
    verdicts = [
        classify_probabilistic(
            transformed,
            spec,
            DistributedRandomizedDistribution(),
            engine=engine,
        )
        for engine in ("scalar", "compiled")
    ]
    scalar_verdict, compiled_verdict = verdicts
    assert (
        scalar_verdict.is_probabilistically_self_stabilizing
        == compiled_verdict.is_probabilistically_self_stabilizing
    )
    assert scalar_verdict.support_closure == compiled_verdict.support_closure
    assert (
        scalar_verdict.num_closure_violations
        == compiled_verdict.num_closure_violations
    )
    assert scalar_verdict.num_states == compiled_verdict.num_states
    assert compiled_verdict.min_absorption == pytest.approx(
        scalar_verdict.min_absorption, abs=1e-9
    )
    assert compiled_verdict.mean_expected_steps == pytest.approx(
        scalar_verdict.mean_expected_steps, rel=1e-9
    )


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def test_unknown_engine_rejected(ring5_system):
    with pytest.raises(MarkovError):
        build_chain(
            ring5_system, CentralRandomizedDistribution(), engine="warp"
        )
    assert CHAIN_ENGINES == ("auto", "compiled", "scalar")


def test_compiled_engine_requires_kernel(ring5_system):
    with pytest.raises(MarkovError):
        build_chain(
            ring5_system,
            CentralRandomizedDistribution(),
            use_kernel=False,
            engine="compiled",
        )


def test_auto_without_kernel_falls_back_to_scalar(ring5_system):
    chain = build_chain(
        ring5_system, CentralRandomizedDistribution(), use_kernel=False
    )
    scalar = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )
    assert chain.states == scalar.states
    assert chain.rows == scalar.rows


def test_compiled_engine_over_table_budget(monkeypatch, ring5_system):
    # Force table compilation failure to check the demand-vs-auto split.
    import repro.markov.builder as builder_module

    def refuse(kernel, *args, **kwargs):
        from repro.errors import ModelError

        raise ModelError("neighborhood space over budget (forced)")

    monkeypatch.setattr(builder_module, "compile_tables", refuse)
    with pytest.raises(MarkovError):
        build_chain(
            ring5_system,
            CentralRandomizedDistribution(),
            engine="compiled",
        )
    # auto silently falls back to the scalar oracle.
    chain = build_chain(ring5_system, CentralRandomizedDistribution())
    scalar = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )
    assert chain.rows == scalar.rows


def test_budget_errors_match_scalar(ring6_system):
    with pytest.raises(MarkovError):
        build_chain(
            ring6_system,
            CentralRandomizedDistribution(),
            max_states=100,
        )
    with pytest.raises(MarkovError):
        build_chain(
            ring6_system,
            CentralRandomizedDistribution(),
            max_states=100,
            engine="compiled",
        )
    # Restricted-initial budget overflow raises from the interning path.
    with pytest.raises(MarkovError):
        build_chain(
            ring6_system,
            CentralRandomizedDistribution(),
            initial=list(ring6_system.all_configurations())[:200],
            max_states=150,
            engine="compiled",
        )


def test_shared_kernel_reused(ring5_system):
    from repro.core.kernel import TransitionKernel

    kernel = TransitionKernel(ring5_system)
    first = build_chain(
        ring5_system, CentralRandomizedDistribution(), kernel=kernel
    )
    second = build_chain(
        ring5_system, SynchronousDistribution(), kernel=kernel
    )
    assert first.num_states == second.num_states == 32


# ----------------------------------------------------------------------
# CSR-native MarkovChain surface
# ----------------------------------------------------------------------
def test_matrix_exports_cached(ring5_system):
    chain = build_chain(ring5_system, CentralRandomizedDistribution())
    assert chain.sparse_matrix() is chain.sparse_matrix()
    assert chain.dense_matrix() is chain.dense_matrix()
    np.testing.assert_allclose(
        chain.dense_matrix(), chain.sparse_matrix().toarray()
    )


def test_transition_arrays_consistent_with_rows(two_process_system):
    chain = build_chain(
        two_process_system, DistributedRandomizedDistribution()
    )
    data, indices, indptr = chain.transition_arrays()
    assert indptr[0] == 0 and indptr[-1] == len(data) == len(indices)
    for state_id, row in enumerate(chain.rows):
        start, stop = indptr[state_id], indptr[state_id + 1]
        assert indices[start:stop].tolist() == sorted(row)
        assert data[start:stop].tolist() == [
            row[t] for t in sorted(row)
        ]


def test_lazy_rows_view_matches_scalar(ring5_system):
    compiled = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="compiled"
    )
    scalar = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )
    assert compiled.rows == scalar.rows
    assert compiled.support_adjacency() == scalar.support_adjacency()
    for source in range(scalar.num_states):
        for target in scalar.rows[source]:
            assert compiled.probability(source, target) == pytest.approx(
                scalar.probability(source, target), abs=TOLERANCE
            )
        assert compiled.probability(source, (source + 1) % 32) == (
            scalar.probability(source, (source + 1) % 32)
        )


@pytest.mark.parametrize("engine", ["scalar", "compiled"])
def test_vectorized_mark_matches_predicate(engine, ring5_system):
    spec = TokenCirculationSpec()
    chain = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine=engine
    )
    scalar_mark = chain.mark(spec.legitimate)
    # Token ring: a process holds a token iff it is enabled, so
    # "legitimate" is "exactly one enabled".
    vector_mark = chain.mark(EnabledCountLegitimacy(1))
    np.testing.assert_array_equal(scalar_mark, vector_mark)
    decoding_mark = chain.mark(
        DecodingLegitimacy(
            lambda cfg, s=ring5_system: spec.legitimate(s, cfg)
        )
    )
    np.testing.assert_array_equal(scalar_mark, decoding_mark)


def test_vectorized_mark_over_table_budget(monkeypatch, ring5_system):
    """Over-budget tables degrade mark() to a kernel walk, never fail."""
    import repro.core.encoding as encoding_module

    chain = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )

    def refuse(*args, **kwargs):
        from repro.errors import ModelError

        raise ModelError("neighborhood space over budget (forced)")

    monkeypatch.setattr(encoding_module, "compile_tables", refuse)
    spec = TokenCirculationSpec()
    np.testing.assert_array_equal(
        chain.mark(EnabledCountLegitimacy(1)), chain.mark(spec.legitimate)
    )


def test_vectorized_mark_restricted_chain(two_process_system):
    chain = build_chain(
        two_process_system,
        CentralRandomizedDistribution(),
        initial=[((False,), (False,))],
        engine="compiled",
    )
    spec = BothTrueSpec()
    np.testing.assert_array_equal(
        chain.mark(spec.legitimate),
        chain.mark(
            DecodingLegitimacy(
                lambda cfg, s=two_process_system: spec.legitimate(s, cfg)
            )
        ),
    )


def test_scalar_engine_bitexact_oracle(ring5_system):
    """engine="scalar" is the pre-PR4 dict walk — and the compiled path
    agrees bit-for-bit on the paper's deterministic workloads."""
    scalar = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="scalar"
    )
    compiled = build_chain(
        ring5_system, CentralRandomizedDistribution(), engine="compiled"
    )
    assert scalar.rows == compiled.rows
