"""Regression guard: the fast composition path equals subset_branches.

StateSpace.explore and build_chain use ``System.resolved_actions`` +
``compose_branches`` (one guard/statement evaluation per configuration)
instead of ``System.subset_branches`` (one per subset).  These tests pin
the equivalence of the two paths, including probabilistic outcomes and
multi-action nondeterminism.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.herman_ring import make_herman_system
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.token_ring import make_token_ring_system
from repro.core.system import compose_branches
from repro.errors import ModelError, SchedulerError
from repro.graphs.generators import path
from repro.transformer.coin_toss import make_transformed_system


def _random_configuration(system, data):
    return tuple(
        tuple(
            data.draw(st.sampled_from(spec.domain))
            for spec in layout.specs
        )
        for layout in system.layouts
    )


def _branch_multiset(branches):
    return Counter(
        (round(b.probability, 12), b.moves, b.target) for b in branches
    )


def _assert_equivalent(system, configuration, subset, action_mode="all"):
    slow = list(
        system.subset_branches(configuration, subset, action_mode)
    )
    resolved = system.resolved_actions(configuration)
    fast = list(
        compose_branches(configuration, subset, resolved, action_mode)
    )
    assert _branch_multiset(slow) == _branch_multiset(fast)


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_token_ring(self, data):
        system = make_token_ring_system(
            data.draw(st.integers(min_value=3, max_value=6))
        )
        configuration = _random_configuration(system, data)
        enabled = sorted(system.enabled_processes(configuration))
        subset = data.draw(
            st.lists(
                st.sampled_from(enabled),
                min_size=1,
                max_size=len(enabled),
                unique=True,
            )
        )
        _assert_equivalent(system, configuration, sorted(subset))

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_leader_tree_multi_action(self, data):
        system = make_leader_tree_system(path(4))
        configuration = _random_configuration(system, data)
        enabled = sorted(system.enabled_processes(configuration))
        if not enabled:
            return
        subset = data.draw(
            st.lists(
                st.sampled_from(enabled),
                min_size=1,
                max_size=len(enabled),
                unique=True,
            )
        )
        _assert_equivalent(system, configuration, sorted(subset))

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_probabilistic_herman(self, data):
        system = make_herman_system(5)
        configuration = _random_configuration(system, data)
        enabled = sorted(system.enabled_processes(configuration))
        subset = data.draw(
            st.lists(
                st.sampled_from(enabled),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        _assert_equivalent(system, configuration, sorted(subset))

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_transformed_composition(self, data):
        base = make_token_ring_system(4)
        system = make_transformed_system(base)
        configuration = _random_configuration(system, data)
        enabled = sorted(system.enabled_processes(configuration))
        if not enabled:
            return
        subset = data.draw(
            st.lists(
                st.sampled_from(enabled),
                min_size=1,
                max_size=len(enabled),
                unique=True,
            )
        )
        _assert_equivalent(system, configuration, sorted(subset))

    def test_first_action_mode(self):
        system = make_leader_tree_system(path(3))
        configuration = ((0,), (0,), (0,))
        enabled = sorted(system.enabled_processes(configuration))
        _assert_equivalent(
            system, configuration, enabled, action_mode="first"
        )


class TestFastPathErrors:
    def test_disabled_process_rejected(self):
        system = make_token_ring_system(4)
        configuration = next(system.all_configurations())
        resolved = system.resolved_actions(configuration)
        disabled = next(
            p for p in system.processes if p not in resolved
        ) if len(resolved) < 4 else None
        if disabled is None:
            pytest.skip("all processes enabled in this configuration")
        with pytest.raises(SchedulerError):
            list(
                compose_branches(configuration, (disabled,), resolved)
            )

    def test_unknown_action_mode(self):
        system = make_token_ring_system(4)
        configuration = next(system.all_configurations())
        resolved = system.resolved_actions(configuration)
        mover = next(iter(resolved))
        with pytest.raises(ModelError):
            list(
                compose_branches(
                    configuration, (mover,), resolved, action_mode="zzz"
                )
            )
