"""Unit tests for repro.core.configuration."""

import pytest

from repro.core.configuration import (
    configuration_as_dicts,
    configuration_from_dicts,
    count_configurations,
    enumerate_configurations,
    make_configuration,
    replace_local,
)
from repro.core.variables import VariableLayout, VarSpec
from repro.errors import DomainError, ModelError


@pytest.fixture
def layouts():
    return [
        VariableLayout((VarSpec("a", (0, 1)), VarSpec("b", (False, True)))),
        VariableLayout((VarSpec("a", (0, 1, 2)), VarSpec("b", (False, True)))),
    ]


class TestMakeReplace:
    def test_make_freezes(self):
        config = make_configuration([[0, False], [1, True]])
        assert config == ((0, False), (1, True))
        assert isinstance(config[0], tuple)

    def test_replace_local(self):
        config = ((0, False), (1, True))
        updated = replace_local(config, 1, (2, False))
        assert updated == ((0, False), (2, False))
        assert config == ((0, False), (1, True))  # original untouched

    def test_replace_first(self):
        config = ((0,), (1,))
        assert replace_local(config, 0, (9,)) == ((9,), (1,))


class TestEnumeration:
    def test_count(self, layouts):
        assert count_configurations(layouts) == 4 * 6

    def test_enumerate_matches_count(self, layouts):
        configs = list(enumerate_configurations(layouts))
        assert len(configs) == 24
        assert len(set(configs)) == 24

    def test_enumeration_order_deterministic(self, layouts):
        first = list(enumerate_configurations(layouts))
        second = list(enumerate_configurations(layouts))
        assert first == second

    def test_first_configuration_is_domain_heads(self, layouts):
        first = next(enumerate_configurations(layouts))
        assert first == ((0, False), (0, False))


class TestDictConversion:
    def test_roundtrip(self, layouts):
        config = ((1, True), (2, False))
        dicts = configuration_as_dicts(config, layouts)
        assert dicts == [{"a": 1, "b": True}, {"a": 2, "b": False}]
        assert configuration_from_dicts(dicts, layouts) == config

    def test_as_dicts_length_mismatch(self, layouts):
        with pytest.raises(ModelError):
            configuration_as_dicts(((0, False),), layouts)

    def test_from_dicts_length_mismatch(self, layouts):
        with pytest.raises(ModelError):
            configuration_from_dicts([{"a": 0, "b": False}], layouts)

    def test_from_dicts_wrong_keys(self, layouts):
        with pytest.raises(ModelError):
            configuration_from_dicts(
                [{"a": 0, "z": False}, {"a": 0, "b": False}], layouts
            )

    def test_from_dicts_domain_check(self, layouts):
        with pytest.raises(DomainError):
            configuration_from_dicts(
                [{"a": 9, "b": False}, {"a": 0, "b": False}], layouts
            )
