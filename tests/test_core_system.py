"""Unit tests for repro.core.system step semantics."""

import pytest

from repro.algorithms.token_ring import make_token_ring_system
from repro.algorithms.two_process import make_two_process_system
from repro.core.actions import Action, Outcome, deterministic_action
from repro.core.algorithm import Algorithm
from repro.core.system import Branch, Move, System
from repro.core.topology import Topology
from repro.core.variables import VariableLayout, VarSpec
from repro.errors import ModelError, SchedulerError
from repro.graphs.generators import path
from repro.random_source import RandomSource


class _Flip(Algorithm):
    """Every process is always enabled and flips its bit."""

    name = "flip"

    def layout(self, topology, process):
        return VariableLayout((VarSpec("b", (0, 1)),))

    def actions(self):
        return (
            deterministic_action(
                "F",
                lambda view: True,
                lambda view: view.set("b", 1 - view.get("b")),
            ),
        )


class _Coin(Algorithm):
    """Probabilistic: set the bit by a fair coin when 0."""

    name = "coin"

    @property
    def is_probabilistic(self):
        return True

    def layout(self, topology, process):
        return VariableLayout((VarSpec("b", (0, 1)),))

    def actions(self):
        def outcomes(view):
            return (
                Outcome(0.5, lambda v: v.set("b", 0)),
                Outcome(0.5, lambda v: v.set("b", 1)),
            )

        return (Action("C", lambda view: view.get("b") == 0, outcomes),)


class TestEnabledness:
    def test_enabled_processes(self, two_process_system):
        assert two_process_system.enabled_processes(
            ((False,), (False,))
        ) == (0, 1)
        assert two_process_system.enabled_processes(
            ((True,), (False,))
        ) == (0,)

    def test_terminal(self, two_process_system):
        assert two_process_system.is_terminal(((True,), (True,)))
        assert not two_process_system.is_terminal(((False,), (False,)))

    def test_enabled_actions_names(self, two_process_system):
        actions = two_process_system.enabled_actions(
            ((False,), (False,)), 0
        )
        assert [a.name for a in actions] == ["A1"]


class TestStep:
    def test_simultaneous_step_reads_old_values(self):
        system = System(_Flip(), Topology(path(2)))
        config = ((0,), (1,))
        moves = {
            0: (system.actions[0], 0),
            1: (system.actions[0], 0),
        }
        assert system.step(config, moves) == ((1,), (0,))

    def test_empty_step_rejected(self, two_process_system):
        with pytest.raises(SchedulerError):
            two_process_system.step(((False,), (False,)), {})

    def test_disabled_action_rejected(self, two_process_system):
        config = ((True,), (True,))
        action = two_process_system.actions[0]
        with pytest.raises(SchedulerError):
            two_process_system.step(config, {0: (action, 0)})

    def test_bad_outcome_index(self, two_process_system):
        config = ((False,), (False,))
        action = two_process_system.actions[0]
        with pytest.raises(ModelError):
            two_process_system.step(config, {0: (action, 5)})


class TestSubsetBranches:
    def test_deterministic_single_branch(self, two_process_system):
        config = ((False,), (False,))
        branches = list(
            two_process_system.subset_branches(config, (0, 1))
        )
        assert len(branches) == 1
        assert branches[0].target == ((True,), (True,))
        assert branches[0].probability == 1.0

    def test_probabilistic_branch_product(self):
        system = System(_Coin(), Topology(path(2)))
        branches = list(system.subset_branches(((0,), (0,)), (0, 1)))
        assert len(branches) == 4
        assert all(abs(b.probability - 0.25) < 1e-12 for b in branches)
        targets = {b.target for b in branches}
        assert targets == {
            ((0,), (0,)),
            ((0,), (1,)),
            ((1,), (0,)),
            ((1,), (1,)),
        }

    def test_empty_subset_rejected(self, two_process_system):
        with pytest.raises(SchedulerError):
            list(
                two_process_system.subset_branches(
                    ((False,), (False,)), ()
                )
            )

    def test_disabled_process_rejected(self, two_process_system):
        with pytest.raises(SchedulerError):
            list(
                two_process_system.subset_branches(
                    ((True,), (False,)), (1,)
                )
            )

    def test_unknown_action_mode(self, two_process_system):
        with pytest.raises(ModelError):
            list(
                two_process_system.subset_branches(
                    ((False,), (False,)), (0,), action_mode="zzz"
                )
            )

    def test_moves_recorded(self, two_process_system):
        (branch,) = two_process_system.subset_branches(
            ((False,), (False,)), (0,)
        )
        assert branch.moves == (Move(0, "A1", 0),)

    def test_successors_support(self, two_process_system):
        successors = two_process_system.successors(
            ((False,), (False,)), [(0,), (1,), (0, 1)]
        )
        assert successors == {
            ((True,), (False,)),
            ((False,), (True,)),
            ((True,), (True,)),
        }


class TestSampling:
    def test_sample_step_deterministic_case(self, two_process_system):
        rng = RandomSource(1)
        target, moves = two_process_system.sample_step(
            ((False,), (False,)), (0, 1), rng
        )
        assert target == ((True,), (True,))
        assert {m.process for m in moves} == {0, 1}

    def test_sample_step_rejects_disabled(self, two_process_system):
        rng = RandomSource(1)
        with pytest.raises(SchedulerError):
            two_process_system.sample_step(((True,), (True,)), (0,), rng)

    def test_probabilistic_sampling_covers_outcomes(self):
        system = System(_Coin(), Topology(path(2)))
        rng = RandomSource(3)
        seen = set()
        for _ in range(60):
            target, _ = system.sample_step(((0,), (0,)), (0,), rng)
            seen.add(target)
        assert seen == {((0,), (0,)), ((1,), (0,))}


class TestConfigurationSpace:
    def test_counts(self, ring5_system):
        assert ring5_system.num_configurations() == 2**5
        assert len(list(ring5_system.all_configurations())) == 32

    def test_check_configuration(self, ring5_system):
        with pytest.raises(ModelError):
            ring5_system.check_configuration(((0,),))
        ring5_system.check_configuration(((0,),) * 5)

    def test_variable_names(self, ring5_system):
        assert ring5_system.variable_names() == ("dt",)


class TestValidation:
    def test_mismatched_layouts_rejected(self):
        class Lopsided(Algorithm):
            name = "lopsided"

            def layout(self, topology, process):
                name = "a" if process == 0 else "b"
                return VariableLayout((VarSpec(name, (0,)),))

            def actions(self):
                return (
                    deterministic_action(
                        "X", lambda v: False, lambda v: None
                    ),
                )

        with pytest.raises(ModelError):
            System(Lopsided(), Topology(path(2)))

    def test_no_actions_rejected(self):
        class NoActions(Algorithm):
            name = "empty"

            def layout(self, topology, process):
                return VariableLayout((VarSpec("a", (0,)),))

            def actions(self):
                return ()

        with pytest.raises(ModelError):
            System(NoActions(), Topology(path(2)))
