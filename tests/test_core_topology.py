"""Unit tests for repro.core.topology."""

import pytest

from repro.core.topology import OrientedRing, Topology
from repro.errors import TopologyError
from repro.graphs.generators import path, ring, star


class TestTopology:
    def test_default_neighbor_order_sorted(self):
        topology = Topology(star(3))
        assert topology.neighbors(0) == (1, 2, 3)

    def test_degree(self):
        topology = Topology(star(3))
        assert topology.degree(0) == 3
        assert topology.degree(1) == 1

    def test_neighbor_by_local_index(self):
        topology = Topology(path(3))
        assert topology.neighbor(1, 0) == 0
        assert topology.neighbor(1, 1) == 2

    def test_neighbor_index_out_of_range(self):
        topology = Topology(path(3))
        with pytest.raises(TopologyError):
            topology.neighbor(0, 1)

    def test_local_index(self):
        topology = Topology(path(3))
        assert topology.local_index(1, 2) == 1

    def test_local_index_non_neighbor(self):
        topology = Topology(path(3))
        with pytest.raises(TopologyError):
            topology.local_index(0, 2)

    def test_mirror_index_roundtrip(self):
        topology = Topology(star(4))
        for p in topology.processes:
            for k in range(topology.degree(p)):
                q = topology.neighbor(p, k)
                assert topology.neighbor(q, topology.mirror_index(p, k)) == p

    def test_mirror_index_out_of_range(self):
        topology = Topology(path(2))
        with pytest.raises(TopologyError):
            topology.mirror_index(0, 3)

    def test_custom_neighbor_order(self):
        topology = Topology(path(3), neighbor_order=[[1], [2, 0], [1]])
        assert topology.neighbor(1, 0) == 2

    def test_custom_order_must_be_permutation(self):
        with pytest.raises(TopologyError):
            Topology(path(3), neighbor_order=[[1], [0, 0], [1]])

    def test_custom_order_wrong_length(self):
        with pytest.raises(TopologyError):
            Topology(path(3), neighbor_order=[[1], [0, 2]])

    def test_num_processes(self):
        assert Topology(ring(5)).num_processes == 5


class TestOrientedRing:
    def test_requires_ring(self):
        with pytest.raises(TopologyError):
            OrientedRing(path(4))

    def test_pred_succ_inverse(self):
        topology = OrientedRing(ring(6))
        for p in topology.processes:
            assert topology.successor(topology.predecessor(p)) == p
            assert topology.predecessor(topology.successor(p)) == p

    def test_orientation_consistency(self):
        """q = Pred(p) iff p is not Pred(q) — the paper's condition."""
        topology = OrientedRing(ring(5))
        for p in topology.processes:
            q = topology.predecessor(p)
            assert topology.predecessor(q) != p

    def test_reversed_orientation(self):
        forward = OrientedRing(ring(6))
        backward = OrientedRing(ring(6), reversed_orientation=True)
        for p in forward.processes:
            assert forward.predecessor(p) == backward.successor(p)

    def test_pred_local_index(self):
        topology = OrientedRing(ring(6))
        for p in topology.processes:
            local = topology.pred_local_index(p)
            assert topology.neighbor(p, local) == topology.predecessor(p)

    def test_succ_local_index(self):
        topology = OrientedRing(ring(6))
        for p in topology.processes:
            local = topology.succ_local_index(p)
            assert topology.neighbor(p, local) == topology.successor(p)

    def test_full_cycle(self):
        topology = OrientedRing(ring(7))
        current = 0
        seen = set()
        for _ in range(7):
            seen.add(current)
            current = topology.successor(current)
        assert current == 0
        assert seen == set(range(7))
