"""Unit tests for traces, lassos, and the simulator."""

import pytest

from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.core.simulate import run, run_until
from repro.core.system import Move
from repro.core.trace import Lasso, Step, Trace, lasso_from_trace
from repro.errors import ModelError, SchedulerError
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    DistributedRandomizedSampler,
    ScriptedSampler,
    SynchronousSampler,
)


def _step(*processes):
    return Step(tuple(Move(p, "A", 0) for p in processes))


class TestTrace:
    def test_starting_at(self):
        trace = Trace.starting_at(((0,),))
        assert trace.initial == ((0,),)
        assert trace.final == ((0,),)
        assert trace.length == 0

    def test_append(self):
        trace = Trace.starting_at(((0,),))
        trace.append(_step(0), ((1,),))
        assert trace.final == ((1,),)
        assert trace.length == 1
        assert trace.acting_sets() == [frozenset({0})]

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            Trace(configurations=[((0,),), ((1,),)], steps=[])

    def test_empty_trace_errors(self):
        trace = Trace()
        with pytest.raises(ModelError):
            _ = trace.initial
        with pytest.raises(ModelError):
            _ = trace.final
        with pytest.raises(ModelError):
            trace.append(_step(0), ((1,),))

    def test_visits_and_first_index(self):
        trace = Trace.starting_at(((0,),))
        trace.append(_step(0), ((1,),))
        assert trace.visits(((1,),))
        assert not trace.visits(((2,),))
        assert trace.first_index_where(lambda c: c == ((1,),)) == 1
        assert trace.first_index_where(lambda c: c == ((9,),)) is None

    def test_iteration_and_len(self):
        trace = Trace.starting_at(((0,),))
        trace.append(_step(0), ((1,),))
        assert list(trace) == [((0,),), ((1,),)]
        assert len(trace) == 2


class TestLasso:
    def _make(self):
        # prefix: a -> b ; cycle: b -> c -> b
        return Lasso(
            prefix_configurations=(((0,),), ((1,),)),
            prefix_steps=(_step(0),),
            cycle_configurations=(((2,),), ((1,),)),
            cycle_steps=(_step(0), _step(0)),
        )

    def test_entry_and_ring(self):
        lasso = self._make()
        assert lasso.entry == ((1,),)
        assert lasso.cycle_ring() == [((1,),), ((2,),)]
        assert lasso.cycle_length == 2

    def test_unroll(self):
        lasso = self._make()
        trace = lasso.unroll(2)
        assert trace.length == 1 + 4
        assert trace.final == ((1,),)

    def test_unroll_zero(self):
        assert self._make().unroll(0).final == ((1,),)

    def test_unroll_negative(self):
        with pytest.raises(ModelError):
            self._make().unroll(-1)

    def test_infinitely_often(self):
        assert self._make().configurations_seen_infinitely_often() == {
            ((1,),),
            ((2,),),
        }

    def test_cycle_must_loop_back(self):
        with pytest.raises(ModelError):
            Lasso(
                prefix_configurations=(((0,),),),
                prefix_steps=(),
                cycle_configurations=(((1,),),),
                cycle_steps=(_step(0),),
            )

    def test_lasso_from_trace(self):
        trace = Trace.starting_at(((0,),))
        trace.append(_step(0), ((1,),))
        trace.append(_step(0), ((2,),))
        trace.append(_step(0), ((1,),))
        lasso = lasso_from_trace(trace, 1)
        assert lasso.entry == ((1,),)
        assert lasso.cycle_length == 2

    def test_lasso_from_trace_validates(self):
        trace = Trace.starting_at(((0,),))
        trace.append(_step(0), ((1,),))
        with pytest.raises(ModelError):
            lasso_from_trace(trace, 0)


class TestRun:
    def test_run_stops_at_terminal(self, two_process_system):
        trace = run(
            two_process_system,
            SynchronousSampler(),
            ((False,), (False,)),
            max_steps=10,
            rng=RandomSource(0),
        )
        assert trace.final == ((True,), (True,))
        assert trace.length == 1

    def test_run_respects_budget(self, two_process_system):
        # (true,false) -> (false,false) -> ... never terminal under a
        # central scripted scheduler bouncing process 0.
        sampler = ScriptedSampler([(0,), (0,)])
        trace = run(
            two_process_system,
            sampler,
            ((True,), (False,)),
            max_steps=2,
            rng=RandomSource(0),
        )
        assert trace.length == 2

    def test_run_until_converges(self, two_process_system):
        spec = BothTrueSpec()
        result = run_until(
            two_process_system,
            DistributedRandomizedSampler(),
            ((False,), (True,)),
            stop=lambda c: spec.legitimate(two_process_system, c),
            max_steps=500,
            rng=RandomSource(5),
        )
        assert result.converged

    def test_run_until_initial_already_legit(self, two_process_system):
        spec = BothTrueSpec()
        result = run_until(
            two_process_system,
            SynchronousSampler(),
            ((True,), (True,)),
            stop=lambda c: spec.legitimate(two_process_system, c),
            max_steps=5,
            rng=RandomSource(0),
        )
        assert result.converged
        assert result.steps_taken == 0

    def test_run_until_budget_exhausted(self, two_process_system):
        sampler = ScriptedSampler([(0,)] * 3)
        result = run_until(
            two_process_system,
            sampler,
            ((True,), (False,)),
            stop=lambda c: False,
            max_steps=3,
            rng=RandomSource(0),
        )
        assert not result.converged

    def test_bad_sampler_empty_subset(self, two_process_system):
        class Empty:
            def choose(self, system, configuration, enabled, rng):
                return []

        with pytest.raises(SchedulerError):
            run(
                two_process_system,
                Empty(),
                ((False,), (False,)),
                max_steps=1,
                rng=RandomSource(0),
            )

    def test_bad_sampler_disabled_process(self, two_process_system):
        class Bad:
            def choose(self, system, configuration, enabled, rng):
                return [0, 1]

        with pytest.raises(SchedulerError):
            run(
                two_process_system,
                Bad(),
                ((True,), (False,)),
                max_steps=1,
                rng=RandomSource(0),
            )

    def test_bad_sampler_duplicates(self, two_process_system):
        class Dup:
            def choose(self, system, configuration, enabled, rng):
                return [0, 0]

        with pytest.raises(SchedulerError):
            run(
                two_process_system,
                Dup(),
                ((False,), (False,)),
                max_steps=1,
                rng=RandomSource(0),
            )
