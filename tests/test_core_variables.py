"""Unit tests for repro.core.variables."""

import pytest

from repro.core.variables import BOTTOM, VariableLayout, VarSpec
from repro.errors import DomainError, ModelError


class TestVarSpec:
    def test_basic(self):
        spec = VarSpec("dt", (0, 1, 2, 3))
        assert spec.size == 4
        assert spec.contains(2)
        assert not spec.contains(4)

    def test_bottom_in_domain(self):
        spec = VarSpec("Par", (0, 1, BOTTOM))
        assert spec.contains(BOTTOM)

    def test_bool_does_not_match_int_domain(self):
        """True == 1 in Python; the domain check must distinguish them."""
        spec = VarSpec("x", (0, 1))
        assert not spec.contains(True)
        assert not spec.contains(False)

    def test_int_does_not_match_bool_domain(self):
        spec = VarSpec("b", (False, True))
        assert not spec.contains(1)
        assert spec.contains(True)

    def test_check_raises(self):
        spec = VarSpec("x", (0, 1))
        with pytest.raises(DomainError):
            spec.check(5)

    def test_check_accepts(self):
        VarSpec("x", (0, 1)).check(0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ModelError):
            VarSpec("x", ())

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ModelError):
            VarSpec("x", (1, 1))

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            VarSpec("", (0,))


class TestVariableLayout:
    def test_slots(self):
        layout = VariableLayout(
            (VarSpec("a", (0, 1)), VarSpec("b", (False, True)))
        )
        assert layout.slot("a") == 0
        assert layout.slot("b") == 1
        assert layout.names == ("a", "b")
        assert len(layout) == 2

    def test_unknown_variable(self):
        layout = VariableLayout((VarSpec("a", (0,)),))
        with pytest.raises(ModelError):
            layout.slot("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            VariableLayout((VarSpec("a", (0,)), VarSpec("a", (1,))))

    def test_num_states(self):
        layout = VariableLayout(
            (VarSpec("a", (0, 1, 2)), VarSpec("b", (False, True)))
        )
        assert layout.num_states == 6

    def test_check_state(self):
        layout = VariableLayout((VarSpec("a", (0, 1)),))
        layout.check_state((1,))
        with pytest.raises(ModelError):
            layout.check_state((1, 2))
        with pytest.raises(DomainError):
            layout.check_state((9,))

    def test_spec_lookup(self):
        layout = VariableLayout((VarSpec("a", (0, 1)),))
        assert layout.spec("a").domain == (0, 1)
