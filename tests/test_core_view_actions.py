"""Unit tests for repro.core.view and repro.core.actions."""

import pytest

from repro.core.actions import Action, Outcome, deterministic_action
from repro.core.algorithm import Algorithm
from repro.core.system import System
from repro.core.topology import Topology
from repro.core.variables import VariableLayout, VarSpec
from repro.errors import DomainError, ModelError
from repro.graphs.generators import path, star


class _CopyMax(Algorithm):
    """Toy algorithm: copy the max neighbor value when smaller."""

    name = "copy-max"

    def layout(self, topology, process):
        return VariableLayout((VarSpec("v", (0, 1, 2)),))

    def constants(self, topology, process):
        return {"limit": 2}

    def actions(self):
        def guard(view):
            return view.get("v") < max(view.neighbor_values("v"))

        def statement(view):
            view.set("v", max(view.neighbor_values("v")))

        return (deterministic_action("UP", guard, statement),)


@pytest.fixture
def system():
    return System(_CopyMax(), Topology(path(3)))


class TestViewReads:
    def test_get_own(self, system):
        view = system.view(((0,), (1,), (2,)), 1, writable=False)
        assert view.get("v") == 1

    def test_nbr(self, system):
        view = system.view(((0,), (1,), (2,)), 1, writable=False)
        assert view.nbr(0, "v") == 0
        assert view.nbr(1, "v") == 2

    def test_degree_and_indexes(self, system):
        view = system.view(((0,), (1,), (2,)), 1, writable=False)
        assert view.degree == 2
        assert list(view.neighbor_indexes) == [0, 1]

    def test_const(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        assert view.const("limit") == 2

    def test_unknown_const(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        with pytest.raises(ModelError):
            view.const("nope")

    def test_neighbor_values(self, system):
        view = system.view(((0,), (1,), (2,)), 1, writable=False)
        assert view.neighbor_values("v") == (0, 2)

    def test_my_index_at(self):
        system = System(_CopyMax(), Topology(star(3)))
        view = system.view(((0,), (0,), (0,), (0,)), 0, writable=False)
        # hub is the only neighbor of each leaf: index 0 everywhere
        assert view.my_index_at(0) == 0
        leaf_view = system.view(((0,), (0,), (0,), (0,)), 2, writable=False)
        # leaf 2 is the hub's local index 1 (neighbors sorted: 1,2,3)
        assert leaf_view.my_index_at(0) == 1

    def test_nbr_degree(self):
        system = System(_CopyMax(), Topology(star(3)))
        leaf_view = system.view(((0,), (0,), (0,), (0,)), 1, writable=False)
        assert leaf_view.nbr_degree(0) == 3


class TestViewWrites:
    def test_readonly_view_rejects_writes(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        with pytest.raises(ModelError):
            view.set("v", 1)

    def test_write_validates_domain(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=True)
        with pytest.raises(DomainError):
            view.set("v", 7)

    def test_staged_state(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=True)
        assert not view.has_writes
        view.set("v", 2)
        assert view.has_writes
        assert view.staged_state() == (2,)
        assert list(view.iter_writes()) == [("v", 2)]

    def test_staged_state_without_writes(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=True)
        assert view.staged_state() == (0,)

    def test_reads_see_pre_step_values(self, system):
        view = system.view(((0,), (1,), (2,)), 0, writable=True)
        view.set("v", 2)
        assert view.get("v") == 0  # atomic semantics: read the old value


class TestActions:
    def test_deterministic_action_single_outcome(self, system):
        action = system.actions[0]
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        outcomes = action.outcome_list(view)
        assert len(outcomes) == 1
        assert outcomes[0].probability == 1.0

    def test_outcome_probability_bounds(self):
        with pytest.raises(ModelError):
            Outcome(0.0, lambda v: None)
        with pytest.raises(ModelError):
            Outcome(1.5, lambda v: None)

    def test_outcome_sum_checked(self, system):
        bad = Action(
            "bad",
            lambda view: True,
            lambda view: (Outcome(0.3, lambda v: None),),
        )
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        with pytest.raises(ModelError):
            bad.outcome_list(view)

    def test_empty_outcomes_rejected(self, system):
        bad = Action("bad", lambda view: True, lambda view: ())
        view = system.view(((0,), (1,), (2,)), 0, writable=False)
        with pytest.raises(ModelError):
            bad.outcome_list(view)

    def test_guard_evaluation(self, system):
        action = system.actions[0]
        low = system.view(((0,), (1,), (2,)), 0, writable=False)
        high = system.view(((2,), (1,), (2,)), 0, writable=False)
        assert action.enabled(low)
        assert not action.enabled(high)
