"""Documentation cannot rot: doctest + command validation for the docs.

Two layers of enforcement over ``README.md`` and ``docs/*.md``:

* every ``>>>`` Python example is executed verbatim through
  :mod:`doctest` (exact expected output);
* every fenced ``bash`` block is parsed, and the commands it shows are
  validated against the real code: experiment/preset ids must resolve
  in the registry, CLI flags must exist on the argparse tree, and
  repo-relative paths must exist.

``benchmarks/run_benchmarks.py`` runs this module before recording any
benchmark, so a stale document fails the perf pipeline too.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import shlex

import pytest

from repro.experiments.cli import build_parser
from repro.experiments.registry import EXPERIMENTS, find_preset

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_FENCE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def _bash_blocks(path: pathlib.Path) -> list[str]:
    return _FENCE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "path", DOCUMENTS, ids=[p.name for p in DOCUMENTS]
)
def test_doctests_pass(path: pathlib.Path):
    """Run every ``>>>`` example in the document, exact output."""
    failures, tests = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert failures == 0, f"{path.name}: {failures} doctest failures"
    assert tests > 0 or path.name == "experiments.md", (
        f"{path.name} has no doctested examples; add at least one"
    )


def _documented_commands() -> list[tuple[str, str]]:
    commands = []
    for path in DOCUMENTS:
        for block in _bash_blocks(path):
            for line in block.splitlines():
                line = line.strip()
                if line and not line.startswith("#"):
                    commands.append((path.name, line))
    return commands


def test_documents_show_commands():
    """The quickstart promises runnable commands; make sure some exist."""
    commands = _documented_commands()
    assert any("repro.experiments" in line for _, line in commands)
    assert any("pytest" in line for _, line in commands)


@pytest.mark.parametrize(
    "source,line",
    _documented_commands(),
    ids=[f"{name}:{line[:40]}" for name, line in _documented_commands()],
)
def test_documented_command_is_valid(source: str, line: str):
    """Statically validate one documented shell command against the code."""
    tokens = shlex.split(line)

    # Repo-relative paths mentioned in commands must exist.
    for token in tokens:
        if token.startswith(("benchmarks/", "docs/", "examples/", "src/")):
            assert (REPO_ROOT / token).exists(), (
                f"{source} references missing path {token!r}"
            )

    if "repro.experiments" in tokens:
        # Parse the CLI invocation through the real argparse tree: flags
        # and subcommands that do not exist raise SystemExit here.
        cli_args = tokens[tokens.index("repro.experiments") + 1 :]
        parsed = build_parser().parse_args(cli_args)
        if parsed.command == "run":
            for experiment_id in parsed.ids:
                known = (
                    experiment_id.upper() in EXPERIMENTS
                    or find_preset(experiment_id) is not None
                )
                assert known, (
                    f"{source} documents unknown experiment"
                    f" {experiment_id!r}"
                )

    if tokens[:2] == ["pip", "install"]:
        # Install commands must target this package (editable from root).
        assert "-e" in tokens
        assert (REPO_ROOT / "pyproject.toml").exists()


def test_experiments_catalog_is_complete():
    """docs/experiments.md must mention every registry entry and preset."""
    from repro.experiments.registry import preset_ids

    catalog = (REPO_ROOT / "docs" / "experiments.md").read_text(
        encoding="utf-8"
    )
    missing = [
        experiment_id
        for experiment_id in (*EXPERIMENTS, *preset_ids())
        if f"`{experiment_id}`" not in catalog
    ]
    assert not missing, f"catalog is missing {missing}"
