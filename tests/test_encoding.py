"""Round-trip and table-compilation tests for the dense encoding layer.

Every seed algorithm's configurations must survive ``encode → decode``
exactly, and the compiled flat NumPy tables must agree entry-by-entry
with the kernel they were compiled from: enabled bits, action counts,
and outcome codes/probabilities.
"""

import numpy as np
import pytest

from repro.algorithms.dijkstra_ring import make_dijkstra_system
from repro.algorithms.herman_ring import make_herman_system
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.randomized_coloring import (
    make_randomized_coloring_system,
)
from repro.algorithms.token_ring import make_token_ring_system
from repro.core.encoding import StateEncoding, compile_tables
from repro.core.kernel import TransitionKernel
from repro.errors import ModelError
from repro.graphs.generators import path, random_tree, ring, star
from repro.markov.montecarlo import random_configurations
from repro.random_source import RandomSource
from repro.transformer.coin_toss import make_transformed_system


def _system_zoo():
    return [
        ("token-ring-5", make_token_ring_system(5)),
        ("token-ring-6", make_token_ring_system(6)),
        ("leader-path-5", make_leader_tree_system(path(5))),
        ("leader-star-4", make_leader_tree_system(star(4))),
        (
            "leader-random-tree-8",
            make_leader_tree_system(random_tree(8, RandomSource(42))),
        ),
        ("herman-5", make_herman_system(5)),
        ("dijkstra-5", make_dijkstra_system(5)),
        ("coloring-ring-5", make_randomized_coloring_system(ring(5))),
        (
            "trans-token-ring-4",
            make_transformed_system(make_token_ring_system(4)),
        ),
        (
            "trans-leader-path-4",
            make_transformed_system(make_leader_tree_system(path(4))),
        ),
    ]


ZOO = _system_zoo()
ZOO_IDS = [name for name, _ in ZOO]


@pytest.mark.parametrize("name,system", ZOO, ids=ZOO_IDS)
class TestEncodingRoundTrip:
    def test_single_configuration_round_trip(self, name, system):
        encoding = StateEncoding(system)
        rng = RandomSource(3)
        for configuration in random_configurations(system, rng, 30):
            codes = encoding.encode(configuration)
            assert codes.dtype == np.uint32
            assert codes.shape == (system.num_processes,)
            assert encoding.decode(codes) == configuration

    def test_batch_round_trip(self, name, system):
        encoding = StateEncoding(system)
        configurations = random_configurations(system, RandomSource(7), 25)
        matrix = encoding.encode_batch(configurations)
        assert matrix.shape == (25, system.num_processes)
        assert encoding.decode_batch(matrix) == configurations

    def test_codes_are_dense(self, name, system):
        """Codes are a bijection onto [0, |local states|) per process."""
        encoding = StateEncoding(system)
        for process, layout in enumerate(system.layouts):
            size = encoding.num_local_states(process)
            assert size == layout.num_states
            decoded = {
                encoding.decode_local(process, code) for code in range(size)
            }
            assert len(decoded) == size
            for state in decoded:
                assert encoding.encode_local(process, state) < size

    def test_rejects_foreign_states(self, name, system):
        encoding = StateEncoding(system)
        with pytest.raises(ModelError):
            encoding.encode_local(0, ("definitely-not-a-state",))
        with pytest.raises(ModelError):
            encoding.decode_local(0, encoding.num_local_states(0))
        with pytest.raises(ModelError):
            encoding.encode(())


@pytest.mark.parametrize("name,system", ZOO, ids=ZOO_IDS)
class TestCompiledTables:
    def test_enabled_matches_system(self, name, system):
        kernel = TransitionKernel(system)
        encoding = StateEncoding(system)
        tables = compile_tables(kernel, encoding)
        assert tables.num_entries == kernel.num_neighborhoods()
        configurations = random_configurations(system, RandomSource(11), 30)
        codes = encoding.encode_batch(configurations)
        enabled = tables.enabled(tables.pack(codes))
        for row, configuration in enumerate(configurations):
            assert (
                tuple(np.flatnonzero(enabled[row]))
                == system.enabled_processes(configuration)
            )

    def test_action_rows_match_kernel(self, name, system):
        """Action counts and outcome rows reproduce the kernel entries."""
        kernel = TransitionKernel(system)
        encoding = StateEncoding(system)
        tables = compile_tables(kernel, encoding)
        configurations = random_configurations(system, RandomSource(13), 15)
        codes = encoding.encode_batch(configurations)
        keys = tables.pack(codes)
        for row, configuration in enumerate(configurations):
            resolved = kernel.resolved_actions(configuration)
            for process in system.processes:
                key = int(keys[row, process])
                actions = resolved.get(process, ())
                assert tables.action_count[key] == len(actions)
                assert bool(tables.enabled_flat[key]) == bool(actions)
                for action_index, (_, outcomes) in enumerate(actions):
                    table_row = int(tables.action_base[key]) + action_index
                    outcome_codes = [
                        encoding.encode_local(process, state)
                        for _, state in outcomes
                    ]
                    stored = tables.outcome_code[
                        table_row, : len(outcomes)
                    ].tolist()
                    assert stored == outcome_codes
                    probabilities = np.array(
                        [probability for probability, _ in outcomes]
                    )
                    expected_cum = np.cumsum(
                        probabilities / probabilities.sum()
                    )
                    stored_cum = tables.outcome_cum[
                        table_row, : len(outcomes)
                    ]
                    assert np.allclose(stored_cum, expected_cum)
                    assert stored_cum[-1] == 1.0
                    # Padding (if any) can never win an inverse-CDF draw.
                    assert (
                        tables.outcome_cum[table_row, len(outcomes):] > 1.0
                    ).all()

    def test_budget_enforced(self, name, system):
        kernel = TransitionKernel(system)
        with pytest.raises(ModelError):
            compile_tables(kernel, max_entries=1)


def test_mixed_radix_packing_covers_all_keys():
    """Packed keys of the full configuration space hit every table entry
    of every process (the mixed-radix layout has no holes/collisions)."""
    system = make_token_ring_system(4)
    kernel = TransitionKernel(system)
    encoding = StateEncoding(system)
    tables = compile_tables(kernel, encoding)
    codes = encoding.encode_batch(list(system.all_configurations()))
    keys = tables.pack(codes)
    for process in system.processes:
        start = int(tables.key_offset[process])
        stop = (
            int(tables.key_offset[process + 1])
            if process + 1 < system.num_processes
            else tables.num_entries
        )
        seen = set(int(k) for k in keys[:, process])
        assert seen == set(range(start, stop))
