"""Cross-engine conformance tier (``pytest -m conformance``).

One parametrized matrix — algorithms (token ring, leader tree, Herman
ring, Israeli–Jalfon, coloring) × topologies (ring/chain/star/tree) ×
schedulers (central/distributed/synchronous/Bernoulli) — drawn from the
shared fixture registry in ``tests/conformance_registry.py`` (exposed
as the ``conformance`` fixture by ``tests/conftest.py``), asserting
every execution tier against its oracle:

* **Monte-Carlo**: seeded scalar-vs-batch-vs-fused equivalence.
  Stochastic cells must fully converge on every engine and agree under
  a two-sample Kolmogorov–Smirnov bound; deterministic cells (a
  deterministic algorithm under the synchronous sampler consumes no
  randomness, so all engines see identical initial draws) must be
  *identical*, censored trials included.
* **Step backends**: every available backend (numpy fast paths, the
  optional numba JIT) against the reference per-step loop on every
  cell, bit-for-bit — including the fault axis, which always takes the
  reference path.
* **Exact analysis**: compiled-vs-scalar chain building bit-equality
  and sharded-vs-sequential exploration bit-equality over the same
  registry systems.

This module replaces the need for future per-PR ad-hoc equivalence
files: a new engine or a new algorithm/topology/scheduler combination
earns a row in the shared registry and inherits the whole tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance_registry import (
    CONFORMANCE_SAMPLERS,
    CONFORMANCE_SYSTEMS,
    conformance_entry,
    conformance_fault_plan,
    conformance_matrix,
    conformance_system,
    ks_bound,
    ks_statistic,
)
from repro.markov.backends import (
    NumpyStepBackend,
    available_backends,
    get_step_backend,
)
from repro.markov.builder import build_chain
from repro.markov.montecarlo import random_configurations
from repro.markov.sweep_engine import SweepPointSpec, SweepRunner
from repro.random_source import RandomSource
from repro.schedulers.distributions import (
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
    SynchronousDistribution,
)
from repro.schedulers.relations import CentralRelation, SynchronousRelation
from repro.stabilization.statespace import StateSpace

pytestmark = pytest.mark.conformance

MATRIX = conformance_matrix()
MATRIX_IDS = [
    f"{system}-{sampler}-{mode}" for system, sampler, mode in MATRIX
]


#: Step budget for "exact"-mode cells: deterministic livelocks burn the
#: whole budget on every engine, so it stays small.
EXACT_MAX_STEPS = 200


def _point(entry, system, sampler_key, seed, mode="ks", fault=None):
    if mode == "exact":
        # Deterministic dynamics with *explicit* initial configurations:
        # every engine cycles the same list the same way, so outcomes
        # must be identical (the scalar engine's lazy initial draws
        # would otherwise interleave with its action-selection draws).
        initials = tuple(
            random_configurations(system, RandomSource(seed), entry.trials)
        )
        return SweepPointSpec(
            system=system,
            sampler=CONFORMANCE_SAMPLERS[sampler_key](),
            legitimate=entry.legitimate(system),
            trials=entry.trials,
            max_steps=EXACT_MAX_STEPS,
            seed=seed,
            batch_legitimate=entry.batch_legitimate,
            initial_configurations=initials,
            label=f"{entry.name}-{sampler_key}",
            fault=fault,
        )
    return SweepPointSpec(
        system=system,
        sampler=CONFORMANCE_SAMPLERS[sampler_key](),
        legitimate=entry.legitimate(system),
        trials=entry.trials,
        max_steps=entry.max_steps,
        seed=seed,
        batch_legitimate=entry.batch_legitimate,
        label=f"{entry.name}-{sampler_key}",
        fault=fault,
    )


def _run(entry, system, sampler_key, engine, seed, mode="ks", fault=None):
    runner = SweepRunner(engine=engine)
    (result,) = runner.run(
        [_point(entry, system, sampler_key, seed, mode, fault)]
    )
    assert runner.last_plan[0].engine == engine
    return result


@pytest.mark.parametrize(
    "system_name,sampler_key,mode", MATRIX, ids=MATRIX_IDS
)
def test_montecarlo_engines_agree(system_name, sampler_key, mode):
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    seed = 977
    scalar = _run(entry, system, sampler_key, "scalar", seed, mode)
    batch = _run(entry, system, sampler_key, "batch", seed, mode)
    fused = _run(entry, system, sampler_key, "fused", seed, mode)

    if mode == "exact":
        # Deterministic dynamics: identical initial draws, identical
        # trajectories — the three engines must agree bit-for-bit,
        # censored (livelocked) trials included.
        assert scalar == batch == fused
        return

    # Stochastic dynamics: structural outcomes are exact, per-trial
    # stabilization times distributional.
    for result in (scalar, batch, fused):
        assert result.trials == entry.trials
        assert result.censored == 0, (
            f"{system_name}/{sampler_key}: engine failed to converge"
        )
    for name, result in (("batch", batch), ("fused", fused)):
        statistic = ks_statistic(scalar.samples, result.samples)
        bound = ks_bound(len(scalar.samples), len(result.samples))
        assert statistic < bound, (
            f"{system_name}/{sampler_key}: scalar-vs-{name} KS statistic"
            f" {statistic:.4f} exceeds bound {bound:.4f}"
        )
        scalar_mean = float(np.mean(scalar.samples))
        other_mean = float(np.mean(result.samples))
        scalar_sem = float(
            np.std(scalar.samples) / np.sqrt(len(scalar.samples))
        )
        assert other_mean == pytest.approx(
            scalar_mean, abs=max(5.0 * scalar_sem, 0.5)
        )


@pytest.mark.parametrize(
    "system_name,sampler_key,mode", MATRIX, ids=MATRIX_IDS
)
def test_montecarlo_engines_agree_under_fault(system_name, sampler_key, mode):
    """The fault axis: every matrix cell re-run under transient
    corruption (see ``conformance_fault_plan``).  Deterministic cells
    must stay bit-identical through the corruption; stochastic cells
    must recover on every engine and agree on both the total
    stabilization-time and the post-fault recovery-time distributions."""
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    seed = 1409
    fault = conformance_fault_plan(system, mode)
    scalar = _run(entry, system, sampler_key, "scalar", seed, mode, fault)
    batch = _run(entry, system, sampler_key, "batch", seed, mode, fault)
    fused = _run(entry, system, sampler_key, "fused", seed, mode, fault)

    if mode == "exact":
        assert scalar == batch == fused
        return

    for result in (scalar, batch, fused):
        assert result.trials == entry.trials
        assert result.faulted == entry.trials, (
            f"{system_name}/{sampler_key}: at-convergence fault"
            " failed to fire on every trial"
        )
        assert result.censored == 0, (
            f"{system_name}/{sampler_key}: engine failed to recover"
        )
        assert result.recovery_samples is not None
    for name, result in (("batch", batch), ("fused", fused)):
        for metric in ("samples", "recovery_samples"):
            reference = getattr(scalar, metric)
            candidate = getattr(result, metric)
            statistic = ks_statistic(reference, candidate)
            bound = ks_bound(len(reference), len(candidate))
            assert statistic < bound, (
                f"{system_name}/{sampler_key}: scalar-vs-{name}"
                f" {metric} KS statistic {statistic:.4f} exceeds"
                f" bound {bound:.4f}"
            )


@pytest.mark.parametrize(
    "system_name,sampler_key,mode",
    [cell for cell in MATRIX if cell[2] == "ks"][::3],
    ids=[
        f"{system}-{sampler}"
        for system, sampler, mode in MATRIX
        if mode == "ks"
    ][::3],
)
def test_fused_multi_seed_replications_match_scalar(
    system_name, sampler_key, mode
):
    """Fusing several seed replications of one cell into one matrix
    leaves each replication distribution-equivalent to its own scalar
    oracle run (pooled comparison over the whole fused group)."""
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    seeds = (11, 22, 33)
    points = [
        _point(entry, system, sampler_key, seed) for seed in seeds
    ]
    fused_runner = SweepRunner(engine="fused")
    fused = fused_runner.run(points)
    assert all(
        execution.engine == "fused"
        and execution.fused_rows == entry.trials * len(seeds)
        for execution in fused_runner.last_plan
    )
    scalar = SweepRunner(engine="scalar").run(points)
    pooled_fused = [t for result in fused for t in result.samples]
    pooled_scalar = [t for result in scalar for t in result.samples]
    assert len(pooled_fused) == len(pooled_scalar) == entry.trials * 3
    statistic = ks_statistic(pooled_scalar, pooled_fused)
    assert statistic < ks_bound(len(pooled_scalar), len(pooled_fused))


# ----------------------------------------------------------------------
# step-backend axis: every available backend on every matrix cell
# ----------------------------------------------------------------------
BACKEND_AXIS = available_backends()


def _run_backend(entry, system, sampler_key, backend, seed, mode, fault=None):
    runner = SweepRunner(engine="batch", backend=backend)
    (result,) = runner.run(
        [_point(entry, system, sampler_key, seed, mode, fault)]
    )
    assert runner.last_plan[0].engine == "batch"
    return result


@pytest.mark.parametrize("backend_name", BACKEND_AXIS)
@pytest.mark.parametrize(
    "system_name,sampler_key,mode", MATRIX, ids=MATRIX_IDS
)
def test_step_backends_bit_equal_on_every_cell(
    system_name, sampler_key, mode, backend_name
):
    """Every available step backend reproduces the reference per-step
    loop on every matrix cell *bit-for-bit*: the numpy backend's fast
    paths (block-drawn scheduler randomness, rank-space super-stepping)
    and the optional numba JIT all consume the random stream exactly
    like the reference loop, so even stochastic cells must be identical
    — a far stronger bar than the KS equivalence used across engines."""
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    seed = 515
    reference = NumpyStepBackend(block_draw=False, superstep=False)
    base = _run_backend(entry, system, sampler_key, reference, seed, mode)
    under = _run_backend(
        entry, system, sampler_key, get_step_backend(backend_name), seed, mode
    )
    assert base == under


@pytest.mark.parametrize("backend_name", BACKEND_AXIS)
@pytest.mark.parametrize(
    "system_name,sampler_key,mode", MATRIX, ids=MATRIX_IDS
)
def test_step_backends_bit_equal_under_fault(
    system_name, sampler_key, mode, backend_name
):
    """The fault axis under every backend: faulted runs always take the
    reference per-step path, so every backend must produce identical
    fault results — this pins the wiring (backend selection must not
    perturb the fault timeline or its random stream)."""
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    seed = 1583
    fault = conformance_fault_plan(system, mode)
    reference = NumpyStepBackend(block_draw=False, superstep=False)
    base = _run_backend(
        entry, system, sampler_key, reference, seed, mode, fault
    )
    under = _run_backend(
        entry,
        system,
        sampler_key,
        get_step_backend(backend_name),
        seed,
        mode,
        fault,
    )
    assert base == under


# ----------------------------------------------------------------------
# exact tier: compiled chains and sharded exploration, bit-equality
# ----------------------------------------------------------------------
#: Registry systems with full spaces small enough for exact analysis.
CHAIN_SYSTEMS = (
    "token-ring5",
    "herman-ring5",
    "israeli-jalfon-ring6",
    "leader-path5",
    "coloring-star4",
)

CHAIN_DISTRIBUTIONS = {
    "central": CentralRandomizedDistribution,
    "synchronous": SynchronousDistribution,
    "distributed": DistributedRandomizedDistribution,
}


@pytest.mark.parametrize("distribution_key", sorted(CHAIN_DISTRIBUTIONS))
@pytest.mark.parametrize("system_name", CHAIN_SYSTEMS)
def test_compiled_chain_bit_equal_to_scalar(system_name, distribution_key):
    system = conformance_system(system_name)
    make_distribution = CHAIN_DISTRIBUTIONS[distribution_key]
    scalar = build_chain(system, make_distribution(), engine="scalar")
    compiled = build_chain(system, make_distribution(), engine="compiled")
    assert scalar.states == compiled.states
    assert scalar.scheduler_name == compiled.scheduler_name
    scalar_data, scalar_indices, scalar_indptr = scalar.transition_arrays()
    data, indices, indptr = compiled.transition_arrays()
    assert (scalar_indptr == indptr).all()
    assert (scalar_indices == indices).all()
    # Bit-equality, not approximation: the compiled builder accumulates
    # in the oracle's emission order (see docs/architecture.md).
    assert (scalar_data == data).all()


@pytest.mark.parametrize(
    "relation_key,make_relation",
    [("central", CentralRelation), ("synchronous", SynchronousRelation)],
)
@pytest.mark.parametrize("system_name", CHAIN_SYSTEMS)
def test_sharded_exploration_bit_equal_to_sequential(
    system_name, relation_key, make_relation
):
    system = conformance_system(system_name)
    sequential = StateSpace.explore(system, make_relation(), shards=1)
    sharded = StateSpace.explore(system, make_relation(), shards=2)
    assert sequential.configurations == sharded.configurations
    assert sequential.index == sharded.index
    assert sequential.edges == sharded.edges
    assert sequential.enabled == sharded.enabled


def test_matrix_covers_required_axes():
    """The registry spans the algorithms, topologies, and schedulers the
    conformance tier promises to cover."""
    algorithms = {entry.algorithm for entry in CONFORMANCE_SYSTEMS}
    topologies = {entry.topology for entry in CONFORMANCE_SYSTEMS}
    samplers = {
        sampler_key
        for entry in CONFORMANCE_SYSTEMS
        for sampler_key, _ in entry.sampler_modes
    }
    assert {
        "token-ring",
        "leader-tree",
        "herman",
        "israeli-jalfon",
        "coloring",
    } <= algorithms
    assert {"ring", "chain", "star", "tree"} <= topologies
    assert samplers == {
        "synchronous",
        "central",
        "distributed",
        "bernoulli",
    }
