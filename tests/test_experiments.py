"""Tests for the experiment harness (fast parameterizations).

Each experiment must run, pass, and produce well-formed rows/markdown.
Heavy experiments run with shrunk parameters; the full-size versions are
exercised by the benchmark harness.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, all_ids, get_experiment
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.thm1 import run_thm1
from repro.experiments.thm2 import run_thm2
from repro.experiments.thm3 import run_thm3
from repro.experiments.thm4 import run_thm4
from repro.experiments.thm5 import run_thm5
from repro.experiments.thm6 import run_thm6
from repro.experiments.thm8 import run_thm8
from repro.experiments.alg3 import run_alg3
from repro.experiments.q1 import run_q1


class TestRegistry:
    def test_all_targets_registered(self):
        assert len(all_ids()) == 21
        assert all_ids()[0] == "FIG1"
        assert all_ids()[-1] == "OPT1"

    def test_lookup_case_insensitive(self):
        assert get_experiment("fig1").experiment_id == "FIG1"

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("FIG9")

    def test_unknown_override_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("THM2").run(bogus=1)

    def test_runner_id_mismatch_detected(self):
        experiment = Experiment(
            "X1", "t", "a", lambda: ExperimentResult(
                "OTHER", "t", "c", "m", True
            )
        )
        with pytest.raises(ExperimentError):
            experiment.run()


class TestResultRendering:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(ring_size=5, steps=6)

    def test_render_contains_status(self, result):
        assert "[PASS]" in result.render() or "[FAIL]" in result.render()

    def test_markdown_sections(self, result):
        md = result.markdown()
        assert md.startswith("### FIG1")
        assert "**Paper claim:**" in md
        assert "```" in md


class TestFigureExperiments:
    def test_fig1_passes_for_several_sizes(self):
        for n in (3, 5, 6):
            assert run_fig1(ring_size=n, steps=2 * n).passed

    def test_fig2_passes(self):
        result = run_fig2()
        assert result.passed
        assert len(result.rows) == 2

    def test_fig3_passes(self):
        result = run_fig3()
        assert result.passed
        assert any(
            row["cycle length"] == "(converged)" for row in result.rows
        )


class TestTheoremExperiments:
    def test_thm1(self):
        assert run_thm1().passed

    def test_thm2_small(self):
        result = run_thm2(ring_sizes=(3, 4))
        assert result.passed
        assert [row["N"] for row in result.rows] == [3, 4]

    def test_thm3(self):
        assert run_thm3().passed

    def test_thm4_small(self):
        assert run_thm4(exhaustive_max_nodes=4).passed

    def test_thm5(self):
        assert run_thm5().passed

    def test_thm6(self):
        result = run_thm6()
        assert result.passed
        paper_row = result.rows[0]
        assert paper_row["strongly fair"] is True
        assert paper_row["Gouda fair"] is False

    def test_thm8(self):
        assert run_thm8().passed

    def test_alg3(self):
        assert run_alg3().passed

    def test_q1_small(self):
        result = run_q1(
            exact_sizes=(3, 4),
            monte_carlo_sizes=(),
            trials=10,
        )
        assert result.passed

    def test_opt1_small(self):
        result = get_experiment("OPT1").run(
            sizes=(5,), tolerance=0.2, max_regions=24
        )
        assert result.passed
        families = [row["family"] for row in result.rows]
        assert families == [
            "random-bit",
            "random-pass",
            "speed-reducer",
            "speed-reducer2",
        ]


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["run", "FIG1"]).ids == ["FIG1"]
        assert parser.parse_args(["run-all", "--fast"]).fast

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output and "Q3" in output

    def test_run_command(self, capsys):
        assert main(["run", "FIG1"]) == 0
        assert "1/1 experiments passed" in capsys.readouterr().out

    def test_run_command_sharded(self, capsys):
        from repro.stabilization.sharding import (
            get_default_shards,
            set_default_shards,
        )

        original = get_default_shards()
        try:
            assert main(["run", "FIG1", "--shards", "2"]) == 0
            output = capsys.readouterr().out
            assert "sharded across 2 workers" in output
            assert "1/1 experiments passed" in output
        finally:
            set_default_shards(original)

    def test_shards_flag_rejects_bad_values(self, capsys):
        parser = build_parser()
        assert parser.parse_args(["run", "FIG1", "--shards", "auto"]).shards == "auto"
        assert parser.parse_args(["run", "FIG1", "--shards", "3"]).shards == 3
        for bad in ("0", "-1", "many"):
            with pytest.raises(SystemExit):
                parser.parse_args(["run", "FIG1", "--shards", bad])
            assert "positive integer or 'auto'" in capsys.readouterr().err

    def test_report_command(self, tmp_path, capsys, monkeypatch):
        # run a single cheap experiment by monkeypatching the registry run
        from repro.experiments import registry

        monkeypatch.setattr(
            registry,
            "EXPERIMENTS",
            {"FIG1": registry.EXPERIMENTS["FIG1"]},
        )
        out = tmp_path / "report.md"
        code = main(["report", "-o", str(out)])
        assert code == 0
        assert out.read_text().startswith("# Generated experiment report")
