"""Exercise the remaining experiment runners (Q2/Q3/THM7/THM9/ALG3 paths).

The cheap parameterizations here complement ``test_experiments.py``; the
full-size versions run in the benchmark harness.
"""

import pytest

from repro.experiments.abl1 import run_abl1
from repro.experiments.q2 import run_q2
from repro.experiments.q3 import run_q3
from repro.experiments.q4 import run_q4
from repro.experiments.thm7 import run_thm7
from repro.experiments.thm9 import run_thm9


class TestQuantitativeRunners:
    def test_q2_exact_only(self):
        result = run_q2(monte_carlo_sizes=(), trials=1)
        assert result.passed
        assert all(row["method"] == "exact" for row in result.rows)

    def test_q2_diameter_column_monotone_on_paths(self):
        result = run_q2(monte_carlo_sizes=(), trials=1)
        paths = [row for row in result.rows if str(row["tree"]).startswith("path")]
        means = [row["mean E[rounds]"] for row in paths]
        assert means == sorted(means)

    def test_q3_small_trials(self):
        result = run_q3(trials=20, seed=11)
        assert result.passed
        protocols = {str(row["protocol"]) for row in result.rows}
        assert any("Herman" in p for p in protocols)
        assert any("Israeli" in p for p in protocols)
        assert any("Dijkstra" in p for p in protocols)

    def test_q3_ij_rows_match_gamblers_ruin(self):
        result = run_q3(trials=20, seed=11)
        ij_rows = [
            row for row in result.rows if "Israeli" in str(row["protocol"])
        ]
        for row in ij_rows:
            n = row["N"]
            expected = (n // 2) * (n - n // 2)
            assert row["mean E[steps or rounds]"] == pytest.approx(expected)

    def test_q4_overheads_recorded(self):
        result = run_q4()
        assert result.passed
        coloring_rows = [
            row for row in result.rows if "coloring" in str(row["problem"])
        ]
        assert len(coloring_rows) == 4


class TestTheoremRunners:
    def test_thm7_full(self):
        result = run_thm7()
        assert result.passed
        # 5 systems x 2 schedulers
        assert len(result.rows) == 10
        negative = [
            row
            for row in result.rows
            if row["possible (=Gouda self-stab)"] is False
        ]
        assert len(negative) == 1  # Algorithm 3 under central only

    def test_thm9_full(self):
        result = run_thm9()
        assert result.passed
        for row in result.rows:
            assert row["trans prob-1"] is True

    def test_abl1_fair_coin_optimal_for_token_ring(self):
        result = run_abl1(biases=(0.3, 0.5, 0.7))
        row = next(
            r for r in result.rows if "Algorithm 1" in str(r["system"])
        )
        assert row["best p"] == 0.5
