"""Fault-injection tier: plan validation, seeded determinism, the
three-engine equivalence contract, and the re-convergence metrics.

The broad engine sweep lives in the conformance matrix's fault axis
(``tests/test_engine_conformance.py``); this module covers the fault
machinery itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.errors import MarkovError, ModelError
from repro.markov.batch import EnabledCountLegitimacy
from repro.markov.montecarlo import (
    MonteCarloResult,
    MonteCarloRunner,
    random_configurations,
)
from repro.markov.sweep_engine import SweepPointSpec, SweepRunner
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    SynchronousSampler,
)
from repro.stabilization.faults import FAULT_MODES, FaultPlan, compile_fault

from conformance_registry import ks_bound, ks_statistic

TOKEN_LEGITIMACY = EnabledCountLegitimacy(1)


def _token_predicate(system):
    spec = TokenCirculationSpec()
    return lambda configuration: spec.legitimate(system, configuration)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_fault_plan_rejects_nonpositive_processes():
    with pytest.raises(ModelError, match="at least one process"):
        FaultPlan(processes=0)


def test_fault_plan_rejects_negative_step():
    with pytest.raises(ModelError, match="step"):
        FaultPlan(processes=1, step=-1)


def test_fault_plan_rejects_unknown_mode():
    with pytest.raises(ModelError, match="random") as excinfo:
        FaultPlan(processes=1, mode="bitflip")
    # The message lists the legal modes.
    for mode in FAULT_MODES:
        assert mode in str(excinfo.value)


def test_fault_plan_rejects_negative_stuck_at_value():
    with pytest.raises(ModelError, match="stuck-at"):
        FaultPlan(processes=1, mode="stuck-at", value=-3)


def test_compile_fault_rejects_too_many_victims():
    system = make_token_ring_system(4)
    plan = FaultPlan(processes=5)
    with pytest.raises(ModelError, match="only"):
        compile_fault(plan, system, trials=10)


def test_compile_fault_rejects_oversized_stuck_at_value():
    system = make_token_ring_system(4)  # m_4 = 3: local codes 0..2
    plan = FaultPlan(processes=1, mode="stuck-at", value=99)
    with pytest.raises(ModelError, match="stuck-at"):
        compile_fault(plan, system, trials=10)


def test_compile_fault_rejects_nonpositive_trials():
    system = make_token_ring_system(4)
    with pytest.raises(ModelError, match="trial"):
        compile_fault(FaultPlan(processes=1), system, trials=0)


def test_enabled_count_legitimacy_rejects_negative_count():
    with pytest.raises(MarkovError, match="non-negative"):
        EnabledCountLegitimacy(-1)


def test_sweep_spec_rejects_non_fault_plan():
    system = make_token_ring_system(4)
    point = SweepPointSpec(
        system=system,
        sampler=CentralRandomizedSampler(),
        legitimate=_token_predicate(system),
        trials=5,
        max_steps=100,
        seed=1,
        batch_legitimate=TOKEN_LEGITIMACY,
        fault={"processes": 1},
    )
    with pytest.raises(MarkovError, match="FaultPlan"):
        SweepRunner().run([point])


def test_measuring_rounds_with_fault_is_rejected():
    system = make_token_ring_system(4)
    runner = MonteCarloRunner(system)
    with pytest.raises(MarkovError, match="round"):
        runner.estimate(
            sampler=CentralRandomizedSampler(),
            legitimate=_token_predicate(system),
            trials=5,
            max_steps=100,
            rng=RandomSource(1),
            measure_rounds=True,
            fault=FaultPlan(processes=1),
        )


# ----------------------------------------------------------------------
# seeded determinism of the compiled plan
# ----------------------------------------------------------------------
def test_compiled_fault_is_seed_deterministic():
    system = make_token_ring_system(6)
    plan = FaultPlan(processes=2, mode="random", seed=77)
    one = compile_fault(plan, system, trials=50)
    two = compile_fault(plan, system, trials=50)
    assert (one.targets == two.targets).all()
    assert (one.codes == two.codes).all()
    other = compile_fault(
        FaultPlan(processes=2, mode="random", seed=78), system, trials=50
    )
    assert not (
        (one.targets == other.targets).all()
        and (one.codes == other.codes).all()
    )


def test_compiled_fault_victims_are_sorted_and_distinct():
    system = make_token_ring_system(6)
    fault = compile_fault(FaultPlan(processes=3, seed=5), system, trials=20)
    for row in fault.targets:
        assert sorted(set(row.tolist())) == row.tolist()


def test_stuck_at_codes_are_constant():
    system = make_token_ring_system(6)
    fault = compile_fault(
        FaultPlan(processes=2, mode="stuck-at", value=1, seed=5),
        system,
        trials=20,
    )
    assert (fault.codes == 1).all()


# ----------------------------------------------------------------------
# engine equivalence under faults
# ----------------------------------------------------------------------
def _fault_point(system, sampler, plan, trials, seed, initials=None):
    return SweepPointSpec(
        system=system,
        sampler=sampler,
        legitimate=_token_predicate(system),
        trials=trials,
        max_steps=2_000,
        seed=seed,
        batch_legitimate=TOKEN_LEGITIMACY,
        initial_configurations=initials,
        fault=plan,
    )


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(processes=1, mode="random", seed=3),
        FaultPlan(processes=2, step=9, mode="adversarial-reset", seed=3),
        FaultPlan(processes=2, step=0, mode="stuck-at", value=1, seed=3),
    ],
    ids=["conv-random", "step-reset", "step0-stuck"],
)
def test_engines_bit_identical_on_deterministic_cell(plan):
    """Synchronous token ring with explicit initials is deterministic:
    all three engines must produce the *same* fault-injected result."""
    system = make_token_ring_system(5)
    initials = tuple(
        random_configurations(system, RandomSource(13), 40)
    )
    results = {}
    for engine in ("scalar", "batch", "fused"):
        point = _fault_point(
            system, SynchronousSampler(), plan, 40, 13, initials
        )
        runner = SweepRunner(engine=engine)
        (results[engine],) = runner.run([point])
        assert runner.last_plan[0].engine == engine
    assert results["scalar"] == results["batch"] == results["fused"]
    assert isinstance(results["scalar"], MonteCarloResult)


def test_engines_ks_equivalent_on_stochastic_cell():
    system = make_token_ring_system(6)
    plan = FaultPlan(processes=2, mode="random", seed=21)
    results = {}
    for engine, seed in (("scalar", 31), ("batch", 32), ("fused", 33)):
        point = _fault_point(
            system, CentralRandomizedSampler(), plan, 300, seed
        )
        (results[engine],) = SweepRunner(engine=engine).run([point])
    for name in ("batch", "fused"):
        for metric in ("samples", "recovery_samples"):
            a = getattr(results["scalar"], metric)
            b = getattr(results[name], metric)
            assert ks_statistic(a, b) < ks_bound(len(a), len(b))


# ----------------------------------------------------------------------
# re-convergence metrics & timeout accounting
# ----------------------------------------------------------------------
def test_at_convergence_fault_fires_on_every_trial():
    system = make_token_ring_system(5)
    runner = MonteCarloRunner(system)
    result = runner.estimate(
        sampler=CentralRandomizedSampler(),
        legitimate=_token_predicate(system),
        trials=100,
        max_steps=5_000,
        rng=RandomSource(8),
        batch_legitimate=TOKEN_LEGITIMACY,
        fault=FaultPlan(processes=2, mode="random", seed=4),
    )
    assert result.faulted == result.trials == 100
    assert result.converged == 100
    assert result.recovery_samples is not None
    assert len(result.recovery_samples) == 100
    assert result.recovery_stats is not None
    assert all(t >= 0 for t in result.recovery_samples)
    assert 0.0 < result.availability <= 1.0
    assert result.max_excursion >= 1


def test_recovery_times_are_total_minus_fault_step():
    """A step-0 fault makes recovery times equal total times."""
    system = make_token_ring_system(5)
    runner = MonteCarloRunner(system)
    result = runner.estimate(
        sampler=CentralRandomizedSampler(),
        legitimate=_token_predicate(system),
        trials=60,
        max_steps=5_000,
        rng=RandomSource(9),
        batch_legitimate=TOKEN_LEGITIMACY,
        fault=FaultPlan(processes=1, step=0, mode="random", seed=4),
    )
    assert result.faulted == 60
    assert result.recovery_samples == result.samples


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_timeout_rate_counts_budget_exhaustion(engine):
    system = make_token_ring_system(6)
    runner = MonteCarloRunner(system, engine=engine)
    result = runner.estimate(
        sampler=CentralRandomizedSampler(),
        legitimate=_token_predicate(system),
        trials=50,
        max_steps=1,
        rng=RandomSource(10),
        batch_legitimate=TOKEN_LEGITIMACY,
    )
    assert result.timed_out == result.censored == 50 - result.converged
    assert result.timed_out > 0
    assert result.timeout_rate == result.timed_out / 50
    assert result.row()["timeout_rate"] == round(result.timeout_rate, 4)


def test_timeout_rate_zero_on_generous_budget():
    system = make_token_ring_system(5)
    runner = MonteCarloRunner(system)
    result = runner.estimate(
        sampler=CentralRandomizedSampler(),
        legitimate=_token_predicate(system),
        trials=40,
        max_steps=50_000,
        rng=RandomSource(11),
        batch_legitimate=TOKEN_LEGITIMACY,
    )
    assert result.timed_out == 0
    assert result.timeout_rate == 0.0
    assert result.row()["timeout_rate"] == 0.0
