"""Golden-output regression: the OPT1 optimal-bias synthesis table.

A small-N OPT1 configuration pinned row-for-row under
``tests/golden/``.  The whole synthesis pipeline is deterministic — no
random sampling, only region centers and bisections — so any change to
the affine table compiler, the parametric CSR freeze, the cached-LU
solver, the interval value-iteration bound, or the refinement loop
shows up as a golden diff instead of a silent numeric drift.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/test_golden_opt1.py --regenerate

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.opt1 import run_opt1

pytestmark = pytest.mark.conformance

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Small rings at a coarse tolerance — cheap enough for the conformance
#: tier, rich enough to cover all four families and both the pruning
#: (1-coin) and box-hull (multi-coin) certification paths.
GOLDEN_RUNS = {
    "opt1_small": lambda: run_opt1(
        sizes=(3, 5), tolerance=0.1, max_regions=48
    ),
}


def _normalize(rows):
    """Round-trip through JSON so committed and fresh rows compare with
    identical types (tuples→lists, float formatting)."""
    return json.loads(json.dumps(rows))


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_opt1_reproduces_golden_rows(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with"
        " PYTHONPATH=src python tests/test_golden_opt1.py --regenerate"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    result = GOLDEN_RUNS[name]()
    assert result.passed, result.render()
    fresh = _normalize(result.rows)
    assert len(fresh) == len(golden["rows"]), (
        f"{name}: row count changed"
    )
    for position, (fresh_row, golden_row) in enumerate(
        zip(fresh, golden["rows"])
    ):
        assert fresh_row == golden_row, (
            f"{name}: row {position} diverged from the golden table\n"
            f"  golden: {golden_row}\n"
            f"  fresh : {fresh_row}"
        )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, runner in sorted(GOLDEN_RUNS.items()):
        result = runner()
        payload = {
            "experiment": result.experiment_id,
            "title": result.title,
            "rows": _normalize(result.rows),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {path} ({len(payload['rows'])} rows)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
