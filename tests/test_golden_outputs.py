"""Golden tests: deterministic artifacts pinned byte-for-byte.

These lock the parts of the reproduction whose exact output is
meaningful: the regenerated Figure 1 execution (unique from a legitimate
configuration) and the ring-orientation conventions it relies on.
"""

from repro.algorithms.token_ring import (
    make_token_ring_system,
    single_token_configuration,
    token_holders,
)
from repro.core.simulate import run
from repro.core.system import System
from repro.core.topology import OrientedRing
from repro.graphs.graph import Graph
from repro.random_source import RandomSource
from repro.schedulers.samplers import CentralRandomizedSampler
from repro.viz.ring_art import render_ring_execution


class TestGoldenFigure1:
    def test_first_three_configurations(self):
        """The (i)-(iii) panels of the regenerated Figure 1 (N=6)."""
        system = make_token_ring_system(6)
        initial = single_token_configuration(system, holder=0)
        trace = run(
            system,
            CentralRandomizedSampler(),
            initial,
            max_steps=2,
            rng=RandomSource(0),
        )
        art = render_ring_execution(
            system,
            trace.configurations,
            lambda s, c: token_holders(s, c),
        )
        assert art == (
            "    (i)  p0:0* p1:1  p2:2  p3:3  p4:0  p5:1 \n"
            "   (ii)  p0:2  p1:1* p2:2  p3:3  p4:0  p5:1 \n"
            "  (iii)  p0:2  p1:3  p2:2* p3:3  p4:0  p5:1 "
        )

    def test_single_token_configuration_is_canonical(self):
        system = make_token_ring_system(6)
        assert single_token_configuration(system, 0) == (
            (0,), (1,), (2,), (3,), (0,), (1,),
        )

    def test_legit_execution_period(self):
        """One full circulation returns to the initial configuration
        after N · m_N / gcd(...)... measured: lcm-driven period 12."""
        system = make_token_ring_system(6)
        initial = single_token_configuration(system, holder=0)
        configuration = initial
        for step in range(1, 25):
            holder = token_holders(system, configuration)[0]
            (branch,) = system.subset_branches(configuration, (holder,))
            configuration = branch.target
            if configuration == initial:
                assert step == 12
                return
        raise AssertionError("legitimate orbit did not close")


class TestScrambledRingOrientation:
    def test_non_cyclic_labeling(self):
        """OrientedRing must orient rings whose node ids are not in
        cyclic order around the cycle."""
        graph = Graph(4, [(0, 2), (2, 1), (1, 3), (3, 0)])
        topology = OrientedRing(graph)
        seen = []
        current = 0
        for _ in range(4):
            seen.append(current)
            current = topology.successor(current)
        assert current == 0
        assert sorted(seen) == [0, 1, 2, 3]
        for p in topology.processes:
            assert topology.successor(topology.predecessor(p)) == p

    def test_algorithm1_runs_on_scrambled_ring(self):
        from repro.algorithms.token_ring import (
            TokenCirculationSpec,
            TokenRingAlgorithm,
            count_tokens,
        )

        graph = Graph(5, [(0, 2), (2, 4), (4, 1), (1, 3), (3, 0)])
        system = System(TokenRingAlgorithm(5), OrientedRing(graph))
        for configuration in system.all_configurations():
            assert count_tokens(system, configuration) >= 1
        from repro.schedulers.relations import DistributedRelation
        from repro.stabilization.classify import classify

        verdict = classify(
            system, TokenCirculationSpec(), DistributedRelation()
        )
        assert verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing
