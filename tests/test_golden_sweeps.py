"""Golden-output regression: seeded fused Q1/Q2/Q3 sweep tables.

Small-N parameterizations of the quantitative experiments, run through
``engine="fused"``, pinned row-for-row under ``tests/golden/``.  The
fused engine is fully deterministic for a fixed seed (initials from
``RandomSource(seed)``, lockstep draws from the fold-seeded NumPy
generator), so any change to its grouping, seeding, retirement order,
or dispatch logic — or to the exact tiers feeding the same tables —
shows up as a golden diff instead of a silent distribution shift.

Regenerate after an *intentional* engine change with::

    PYTHONPATH=src python tests/test_golden_sweeps.py --regenerate

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.q1 import run_q1
from repro.experiments.q2 import run_q2
from repro.experiments.q3 import run_q3

pytestmark = pytest.mark.conformance

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Small-N fused configurations — cheap enough for tier-1, rich enough
#: to cover exact + Monte-Carlo rows of all three sweeps.
GOLDEN_SWEEPS = {
    "q1_small": lambda: run_q1(
        exact_sizes=(3, 4),
        monte_carlo_sizes=(8,),
        trials=60,
        engine="fused",
    ),
    "q2_small": lambda: run_q2(
        monte_carlo_sizes=(8,), trials=60, engine="fused"
    ),
    "q3_small": lambda: run_q3(trials=40, engine="fused"),
}


def _normalize(rows):
    """Round-trip through JSON so committed and fresh rows compare with
    identical types (tuples→lists, float formatting)."""
    return json.loads(json.dumps(rows))


@pytest.mark.parametrize("name", sorted(GOLDEN_SWEEPS))
def test_fused_sweep_reproduces_golden_rows(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with"
        " PYTHONPATH=src python tests/test_golden_sweeps.py --regenerate"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    result = GOLDEN_SWEEPS[name]()
    assert result.passed, result.render()
    fresh = _normalize(result.rows)
    assert len(fresh) == len(golden["rows"]), (
        f"{name}: row count changed"
    )
    for position, (fresh_row, golden_row) in enumerate(
        zip(fresh, golden["rows"])
    ):
        assert fresh_row == golden_row, (
            f"{name}: row {position} diverged from the golden table\n"
            f"  golden: {golden_row}\n"
            f"  fresh : {fresh_row}"
        )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, runner in sorted(GOLDEN_SWEEPS.items()):
        result = runner()
        payload = {
            "experiment": result.experiment_id,
            "title": result.title,
            "rows": _normalize(result.rows),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {path} ({len(payload['rows'])} rows)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
