"""Unit tests for repro.graphs.generators."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    balanced_binary_tree,
    broom,
    caterpillar,
    complete,
    double_broom,
    figure2_tree,
    figure3_chain,
    path,
    random_tree,
    ring,
    spider,
    star,
)
from repro.graphs.properties import is_connected, is_ring, is_tree
from repro.random_source import RandomSource


class TestRing:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 10])
    def test_ring_shape(self, n):
        graph = ring(n)
        assert graph.num_nodes == n
        assert graph.num_edges == n
        assert is_ring(graph)

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            ring(2)


class TestPath:
    def test_single_node(self):
        assert path(1).num_edges == 0

    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_path_shape(self, n):
        graph = path(n)
        assert graph.num_edges == n - 1
        assert is_tree(graph)
        assert graph.degree(0) == 1
        assert graph.degree(n - 1) == 1

    def test_path_zero_rejected(self):
        with pytest.raises(GraphError):
            path(0)


class TestStar:
    def test_star_shape(self):
        graph = star(4)
        assert graph.num_nodes == 5
        assert graph.degree(0) == 4
        assert all(graph.degree(i) == 1 for i in range(1, 5))
        assert is_tree(graph)

    def test_star_needs_leaf(self):
        with pytest.raises(GraphError):
            star(0)


class TestComplete:
    def test_k4(self):
        graph = complete(4)
        assert graph.num_edges == 6
        assert graph.max_degree == 3

    def test_k1(self):
        assert complete(1).num_edges == 0

    def test_rejects_zero(self):
        with pytest.raises(GraphError):
            complete(0)


class TestSpider:
    def test_spider_3x2(self):
        graph = spider(3, 2)
        assert graph.num_nodes == 7
        assert graph.degree(0) == 3
        assert is_tree(graph)

    def test_spider_validation(self):
        with pytest.raises(GraphError):
            spider(0, 2)
        with pytest.raises(GraphError):
            spider(2, 0)


class TestBrooms:
    def test_broom(self):
        graph = broom(2, 3)
        assert graph.num_nodes == 6
        assert is_tree(graph)
        assert graph.degree(2) == 4  # hub: one handle edge + 3 bristles

    def test_broom_validation(self):
        with pytest.raises(GraphError):
            broom(0, 1)

    def test_double_broom(self):
        graph = double_broom(2, 2, 3)
        assert graph.num_nodes == 8
        assert is_tree(graph)
        assert graph.degree(0) == 3
        assert graph.degree(2) == 4

    def test_double_broom_validation(self):
        with pytest.raises(GraphError):
            double_broom(1, 0, 1)


class TestCaterpillar:
    def test_caterpillar(self):
        graph = caterpillar(3, [1, 0, 2])
        assert graph.num_nodes == 6
        assert is_tree(graph)

    def test_caterpillar_leg_mismatch(self):
        with pytest.raises(GraphError):
            caterpillar(2, [1])

    def test_caterpillar_negative_legs(self):
        with pytest.raises(GraphError):
            caterpillar(1, [-1])


class TestBalancedBinaryTree:
    @pytest.mark.parametrize("depth,size", [(0, 1), (1, 3), (2, 7), (3, 15)])
    def test_sizes(self, depth, size):
        graph = balanced_binary_tree(depth)
        assert graph.num_nodes == size
        assert is_tree(graph)

    def test_negative_depth(self):
        with pytest.raises(GraphError):
            balanced_binary_tree(-1)


class TestRandomTree:
    def test_is_tree_for_many_seeds(self):
        for seed in range(20):
            graph = random_tree(9, RandomSource(seed))
            assert is_tree(graph)

    def test_small_sizes(self):
        assert random_tree(1, RandomSource(0)).num_nodes == 1
        assert random_tree(2, RandomSource(0)).num_edges == 1

    def test_rejects_zero(self):
        with pytest.raises(GraphError):
            random_tree(0, RandomSource(0))

    def test_deterministic_given_seed(self):
        a = random_tree(8, RandomSource(7))
        b = random_tree(8, RandomSource(7))
        assert a == b


class TestPaperGraphs:
    def test_figure2_tree_is_8_node_tree(self):
        graph = figure2_tree()
        assert graph.num_nodes == 8
        assert is_tree(graph)

    def test_figure3_chain(self):
        graph = figure3_chain()
        assert graph.num_nodes == 4
        assert graph.degree_sequence() == (2, 2, 1, 1)
        assert is_connected(graph)
