"""Unit tests for repro.graphs.graph."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)

    def test_keeps_sorted_pair(self):
        assert normalize_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            normalize_edge(2, 2)


class TestGraphConstruction:
    def test_empty_graph_single_node(self):
        graph = Graph(1, [])
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_rejects_negative_node(self):
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_edges_are_canonical_and_sorted(self):
        graph = Graph(4, [(3, 2), (1, 0), (2, 0)])
        assert graph.edges == ((0, 1), (0, 2), (2, 3))


class TestAccessors:
    @pytest.fixture
    def triangle(self):
        return Graph(3, [(0, 1), (1, 2), (0, 2)])

    def test_neighbors_sorted(self, triangle):
        assert triangle.neighbors(1) == (0, 2)

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_max_min_degree(self):
        star = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert star.max_degree == 3
        assert star.min_degree == 1

    def test_has_edge_symmetric(self, triangle):
        assert triangle.has_edge(2, 0)
        assert triangle.has_edge(0, 2)

    def test_has_edge_false(self):
        chain = Graph(3, [(0, 1), (1, 2)])
        assert not chain.has_edge(0, 2)

    def test_has_edge_self_is_false(self, triangle):
        assert not triangle.has_edge(1, 1)

    def test_neighbors_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(5)

    def test_degree_sequence(self):
        star = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert star.degree_sequence() == (3, 1, 1, 1)


class TestDunder:
    def test_len_iter_contains(self):
        graph = Graph(3, [(0, 1)])
        assert len(graph) == 3
        assert list(graph) == [0, 1, 2]
        assert 2 in graph
        assert 3 not in graph
        assert "x" not in graph

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_against_other_type(self):
        assert Graph(1, []) != "graph"

    def test_repr(self):
        assert "num_nodes=2" in repr(Graph(2, [(0, 1)]))


class TestRelabeling:
    def test_relabeled_is_isomorphic(self):
        chain = Graph(3, [(0, 1), (1, 2)])
        relabeled = chain.relabeled([2, 1, 0])
        assert relabeled.edges == ((0, 1), (1, 2))

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1)]).relabeled([0, 0, 1])

    def test_is_automorphism_mirror_of_chain(self):
        chain = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert chain.is_automorphism([3, 2, 1, 0])

    def test_is_automorphism_rejects_bad_map(self):
        chain = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert not chain.is_automorphism([1, 0, 2, 3])

    def test_is_automorphism_rejects_non_permutation(self):
        chain = Graph(3, [(0, 1), (1, 2)])
        assert not chain.is_automorphism([0, 0, 1])

    def test_subgraph_edges(self):
        square = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert square.subgraph_edges([0, 1, 2]) == [(0, 1), (1, 2)]
