"""Unit + property tests for repro.graphs.properties (incl. Property 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    complete,
    path,
    random_tree,
    ring,
    spider,
    star,
)
from repro.graphs.graph import Graph
from repro.graphs.prufer import prufer_decode
from repro.graphs.properties import (
    all_pairs_distances,
    bfs_distances,
    centers,
    connected_components,
    diameter,
    distance,
    eccentricities,
    eccentricity,
    internal_nodes,
    is_bipartite,
    is_connected,
    is_path_graph,
    is_ring,
    is_tree,
    leaves,
    radius,
    shortest_path,
    tree_center_split,
)
from repro.random_source import RandomSource

TREES = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=max(n - 2, 0),
        max_size=max(n - 2, 0),
    ).map(lambda seq: prufer_decode(tuple(seq), n))
)


class TestDistances:
    def test_bfs_on_path(self):
        assert bfs_distances(path(4), 0) == [0, 1, 2, 3]

    def test_bfs_unreachable(self):
        graph = Graph(3, [(0, 1)])
        assert bfs_distances(graph, 0)[2] == -1

    def test_distance_symmetric_on_ring(self):
        graph = ring(6)
        assert distance(graph, 1, 4) == distance(graph, 4, 1) == 3

    def test_distance_raises_when_disconnected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            distance(graph, 0, 2)

    def test_all_pairs_matches_single_source(self):
        graph = spider(3, 2)
        matrix = all_pairs_distances(graph)
        for source in graph.nodes:
            assert matrix[source] == bfs_distances(graph, source)


class TestConnectivity:
    def test_connected_ring(self):
        assert is_connected(ring(5))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_components(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(graph) == [[0, 1], [2, 3], [4]]

    def test_single_node_connected(self):
        assert is_connected(Graph(1, []))


class TestEccentricityDiameter:
    def test_path_eccentricities(self):
        assert eccentricities(path(5)) == [4, 3, 2, 3, 4]

    def test_eccentricity_raises_disconnected(self):
        with pytest.raises(GraphError):
            eccentricity(Graph(3, [(0, 1)]), 0)

    def test_diameter_radius_ring(self):
        assert diameter(ring(6)) == 3
        assert radius(ring(6)) == 3

    def test_diameter_star(self):
        assert diameter(star(5)) == 2
        assert radius(star(5)) == 1


class TestCenters:
    def test_path_even_two_centers(self):
        assert centers(path(4)) == [1, 2]

    def test_path_odd_one_center(self):
        assert centers(path(5)) == [2]

    def test_star_center(self):
        assert centers(star(6)) == [0]

    def test_ring_all_centers(self):
        assert centers(ring(5)) == [0, 1, 2, 3, 4]

    def test_tree_center_split_two(self):
        cs, two = tree_center_split(path(4))
        assert cs == [1, 2] and two

    def test_tree_center_split_one(self):
        cs, two = tree_center_split(path(5))
        assert cs == [2] and not two

    def test_tree_center_split_rejects_non_tree(self):
        with pytest.raises(GraphError):
            tree_center_split(ring(4))

    @settings(max_examples=60, deadline=None)
    @given(TREES)
    def test_property_1_one_or_two_adjacent_centers(self, tree):
        """Paper Property 1: a tree has one center or two neighboring."""
        cs = centers(tree)
        assert len(cs) in (1, 2)
        if len(cs) == 2:
            assert tree.has_edge(cs[0], cs[1])

    @settings(max_examples=60, deadline=None)
    @given(TREES)
    def test_tree_diameter_radius_relation(self, tree):
        """For trees: D = 2R or 2R - 1 (center splits the diameter)."""
        d, r = diameter(tree), radius(tree)
        assert d in (2 * r, 2 * r - 1)


class TestRecognizers:
    def test_is_tree(self):
        assert is_tree(path(6))
        assert not is_tree(ring(6))
        assert not is_tree(Graph(4, [(0, 1), (2, 3)]))

    def test_is_ring(self):
        assert is_ring(ring(4))
        assert not is_ring(path(4))
        assert not is_ring(Graph(2, [(0, 1)]))
        # two disjoint triangles: all degree 2 but disconnected
        two_triangles = Graph(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert not is_ring(two_triangles)

    def test_is_path_graph(self):
        assert is_path_graph(path(5))
        assert not is_path_graph(star(3))

    def test_leaves_and_internal(self):
        graph = star(4)
        assert leaves(graph) == [1, 2, 3, 4]
        assert internal_nodes(graph) == [0]

    def test_bipartite(self):
        assert is_bipartite(path(5))
        assert is_bipartite(ring(6))
        assert not is_bipartite(ring(5))
        assert not is_bipartite(complete(3))


class TestShortestPath:
    def test_endpoints_included(self):
        found = shortest_path(ring(6), 0, 3)
        assert found[0] == 0 and found[-1] == 3
        assert len(found) == 4

    def test_trivial_path(self):
        assert shortest_path(path(3), 1, 1) == [1]

    def test_raises_disconnected(self):
        with pytest.raises(GraphError):
            shortest_path(Graph(3, [(0, 1)]), 0, 2)

    def test_consecutive_nodes_adjacent(self):
        graph = random_tree(10, RandomSource(3))
        found = shortest_path(graph, 0, 9)
        for u, v in zip(found, found[1:]):
            assert graph.has_edge(u, v)
