"""Unit + property tests for the Prüfer codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import path, ring, star
from repro.graphs.properties import is_tree
from repro.graphs.prufer import (
    all_labeled_trees,
    num_labeled_trees,
    prufer_decode,
    prufer_encode,
)


class TestDecode:
    def test_small_trees(self):
        assert prufer_decode((), 1).num_nodes == 1
        assert prufer_decode((), 2).edges == ((0, 1),)

    def test_star_sequence(self):
        # All entries equal to the hub decode to a star.
        graph = prufer_decode((0, 0, 0), 5)
        assert graph.degree(0) == 4

    def test_decode_always_tree(self):
        assert is_tree(prufer_decode((2, 2, 1), 5))

    def test_rejects_bad_length(self):
        with pytest.raises(GraphError):
            prufer_decode((0,), 5)

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(GraphError):
            prufer_decode((5,), 3)

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            prufer_decode((), 0)


class TestEncode:
    def test_star(self):
        assert prufer_encode(star(4)) == (0, 0, 0)

    def test_path(self):
        assert prufer_encode(path(4)) == (1, 2)

    def test_small(self):
        assert prufer_encode(path(2)) == ()

    def test_rejects_non_tree(self):
        with pytest.raises(GraphError):
            prufer_encode(ring(4))

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=3, max_value=9).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=n - 2,
                    max_size=n - 2,
                ),
            )
        )
    )
    def test_roundtrip(self, case):
        n, sequence = case
        tree = prufer_decode(tuple(sequence), n)
        assert prufer_encode(tree) == tuple(sequence)


class TestEnumeration:
    def test_counts_match_cayley(self):
        for n in range(1, 6):
            trees = list(all_labeled_trees(n))
            assert len(trees) == num_labeled_trees(n)

    def test_all_distinct_n4(self):
        trees = list(all_labeled_trees(4))
        assert len(set(trees)) == 16

    def test_all_are_trees_n5(self):
        assert all(is_tree(t) for t in all_labeled_trees(5))

    def test_enumeration_cap(self):
        with pytest.raises(GraphError):
            list(all_labeled_trees(8))

    def test_num_labeled_trees_values(self):
        assert num_labeled_trees(1) == 1
        assert num_labeled_trees(2) == 1
        assert num_labeled_trees(3) == 3
        assert num_labeled_trees(7) == 16807

    def test_num_labeled_trees_rejects_zero(self):
        with pytest.raises(GraphError):
            num_labeled_trees(0)
