"""End-to-end integration tests crossing all subsystem boundaries."""

import math

import numpy as np
import pytest

from repro import (
    RandomSource,
    build_chain,
    classify,
    hitting_summary,
    make_leader_tree_system,
    make_token_ring_system,
    make_transformed_system,
    make_two_process_system,
    run_until,
)
from repro.algorithms.leader_tree import TreeLeaderSpec, satisfies_lc
from repro.algorithms.token_ring import TokenCirculationSpec
from repro.algorithms.two_process import BothTrueSpec
from repro.graphs.generators import random_tree
from repro.markov.hitting import expected_hitting_times
from repro.markov.montecarlo import estimate_stabilization_time
from repro.schedulers.distributions import CentralRandomizedDistribution
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    DistributedRandomizedSampler,
    SynchronousSampler,
)
from repro.stabilization.convergence import (
    possible_convergence,
    shortest_distances_to_legitimate,
)
from repro.stabilization.statespace import StateSpace
from repro.transformer.coin_toss import TransformedSpec


class TestExactVsMonteCarlo:
    """The two measurement paths must agree — the strongest end-to-end
    consistency check in the suite."""

    def test_token_ring_central_randomized(self):
        system = make_token_ring_system(4)
        spec = TokenCirculationSpec()
        chain = build_chain(system, CentralRandomizedDistribution())
        exact = expected_hitting_times(
            chain, chain.mark(spec.legitimate)
        )
        exact_mean = float(exact.mean())  # uniform over all 81 configs
        result = estimate_stabilization_time(
            system,
            CentralRandomizedSampler(),
            lambda c: spec.legitimate(system, c),
            trials=4000,
            max_steps=100_000,
            rng=RandomSource(17),
        )
        assert result.censored == 0
        assert abs(result.stats.mean - exact_mean) < 0.35

    def test_transformed_two_process_synchronous(self):
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(BothTrueSpec(), base)
        chain = build_chain(
            transformed,
            __import__(
                "repro.schedulers.distributions", fromlist=["x"]
            ).SynchronousDistribution(),
        )
        exact = expected_hitting_times(
            chain, chain.mark(tspec.legitimate)
        )
        exact_mean = float(exact.mean())
        result = estimate_stabilization_time(
            transformed,
            SynchronousSampler(),
            lambda c: tspec.legitimate(transformed, c),
            trials=4000,
            max_steps=100_000,
            rng=RandomSource(23),
        )
        assert result.censored == 0
        assert abs(result.stats.mean - exact_mean) < 0.6


class TestSimulationRespectsTheory:
    def test_weak_stabilizing_converges_under_randomized_scheduler(self):
        """Theorem 7 empirically: every random run of Algorithm 2 under
        the distributed randomized sampler converges."""
        rng = RandomSource(5)
        for seed in range(5):
            tree = random_tree(6, rng.spawn(seed))
            system = make_leader_tree_system(tree)
            spec = TreeLeaderSpec()
            from repro.markov.montecarlo import random_configuration

            initial = random_configuration(system, rng)
            result = run_until(
                system,
                DistributedRandomizedSampler(),
                initial,
                stop=lambda c: spec.legitimate(system, c),
                max_steps=50_000,
                rng=rng.spawn(100 + seed),
            )
            assert result.converged
            assert satisfies_lc(system, result.trace.final)

    def test_converged_leader_is_stable(self):
        """Once LC holds the configuration is terminal: running further
        changes nothing (strong closure, Lemma 10)."""
        system = make_leader_tree_system(random_tree(5, RandomSource(2)))
        spec = TreeLeaderSpec()
        rng = RandomSource(3)
        from repro.markov.montecarlo import random_configuration

        result = run_until(
            system,
            CentralRandomizedSampler(),
            random_configuration(system, rng),
            stop=lambda c: spec.legitimate(system, c),
            max_steps=50_000,
            rng=rng,
        )
        assert result.converged
        assert system.is_terminal(result.trace.final)


class TestCrossCheckerConsistency:
    def test_distance_field_vs_classification(self):
        """possible convergence ⟺ no -1 in the BFS distance field."""
        system = make_token_ring_system(5)
        spec = TokenCirculationSpec()
        space = StateSpace.explore(system, DistributedRelation())
        legitimate = space.legitimate_mask(spec.legitimate)
        possible, stranded = possible_convergence(space, legitimate)
        distances = shortest_distances_to_legitimate(space, legitimate)
        assert possible == all(d >= 0 for d in distances)
        assert not stranded

    def test_verdicts_match_chain_absorption(self):
        """classify() possible-convergence vs Markov absorption — the
        Theorem 7 equivalence as a library-level invariant."""
        from repro.markov.hitting import absorption_probabilities

        for maker, spec in (
            (make_two_process_system, BothTrueSpec()),
            (lambda: make_token_ring_system(4), TokenCirculationSpec()),
        ):
            system = maker()
            verdict = classify(system, spec, CentralRelation())
            chain = build_chain(system, CentralRandomizedDistribution())
            absorption = absorption_probabilities(
                chain, chain.mark(spec.legitimate)
            )
            assert verdict.possible_convergence == bool(
                np.all(absorption > 1 - 1e-9)
            )

    def test_public_api_quickstart(self):
        """The README quickstart must keep working."""
        system = make_token_ring_system(6)
        verdict = classify(
            system, TokenCirculationSpec(), DistributedRelation()
        )
        assert verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing
        summary = hitting_summary(
            build_chain(system, CentralRandomizedDistribution()),
            build_chain(
                system, CentralRandomizedDistribution()
            ).mark(TokenCirculationSpec().legitimate),
        )
        assert summary.converges_with_probability_one
