"""Seeded property tests: the kernel is bit-for-bit the System semantics.

The :class:`~repro.core.kernel.TransitionKernel` memoizes guard/outcome
resolution per local neighborhood; these tests assert that every fast
path — ``enabled_processes``, ``enabled_actions``, ``resolved_actions``,
``sample_step``, whole sampled traces, state-space exploration, and chain
building — produces results identical to the reference :class:`System`
path across deterministic and probabilistic algorithms on assorted
topologies and seeds.

Israeli–Jalfon is deliberately absent from the system zoo: it is modeled
directly as a Markov process on token-position sets (see the substitution
note in :mod:`repro.algorithms.israeli_jalfon`), not as a guarded-command
``System``, so there is no kernel path to compare.  The probabilistic
slots are covered by Herman's ring, randomized coloring, and the
coin-toss-transformed token ring instead.
"""

import pytest

from repro.algorithms.herman_ring import make_herman_system
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.randomized_coloring import (
    make_randomized_coloring_system,
)
from repro.algorithms.token_ring import make_token_ring_system
from repro.core.kernel import KernelCursor, TransitionKernel
from repro.core.simulate import run, run_until
from repro.errors import MarkovError, ModelError, SchedulerError
from repro.graphs.generators import path, random_tree, ring, star
from repro.markov.builder import build_chain
from repro.markov.montecarlo import (
    MonteCarloRunner,
    estimate_stabilization_time,
    random_configuration,
)
from repro.random_source import RandomSource
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    SynchronousDistribution,
)
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    DistributedRandomizedSampler,
    RoundRobinSampler,
    SynchronousSampler,
)
from repro.stabilization.statespace import StateSpace
from repro.transformer.coin_toss import make_transformed_system


def _system_zoo():
    return [
        ("token-ring-5", make_token_ring_system(5)),
        ("token-ring-6", make_token_ring_system(6)),
        ("leader-path-5", make_leader_tree_system(path(5))),
        ("leader-star-4", make_leader_tree_system(star(4))),
        (
            "leader-random-tree-8",
            make_leader_tree_system(random_tree(8, RandomSource(42))),
        ),
        ("herman-5", make_herman_system(5)),
        ("herman-7", make_herman_system(7)),
        ("coloring-ring-5", make_randomized_coloring_system(ring(5))),
        (
            "coloring-random-tree-7",
            make_randomized_coloring_system(random_tree(7, RandomSource(7))),
        ),
        ("trans-token-ring-4", make_transformed_system(make_token_ring_system(4))),
    ]


ZOO = _system_zoo()
ZOO_IDS = [name for name, _ in ZOO]


def _sample_configurations(system, count=40, seed=11):
    rng = RandomSource(seed)
    return [random_configuration(system, rng) for _ in range(count)]


def _normalize(resolved):
    """Comparable form of System/kernel resolved_actions output."""
    return {
        process: [
            (action.name, list(outcomes)) for action, outcomes in choices
        ]
        for process, choices in resolved.items()
    }


@pytest.mark.parametrize("name,system", ZOO, ids=ZOO_IDS)
class TestReadPathEquivalence:
    def test_enabled_and_resolved_match(self, name, system):
        kernel = TransitionKernel(system)
        for configuration in _sample_configurations(system):
            assert kernel.enabled_processes(
                configuration
            ) == system.enabled_processes(configuration)
            assert _normalize(
                kernel.resolved_actions(configuration)
            ) == _normalize(system.resolved_actions(configuration))
            for process in system.processes:
                assert kernel.is_enabled(
                    configuration, process
                ) == system.is_enabled(configuration, process)
                assert kernel.enabled_actions(
                    configuration, process
                ) == system.enabled_actions(configuration, process)

    def test_statements_run_once_per_neighborhood(self, name, system):
        kernel = TransitionKernel(system)
        configurations = _sample_configurations(system)
        for configuration in configurations:
            kernel.enabled_processes(configuration)
        resolutions = kernel.resolutions
        assert resolutions == kernel.table_size
        # Revisiting the same configurations resolves nothing new.
        for configuration in configurations:
            kernel.enabled_processes(configuration)
        assert kernel.resolutions == resolutions

    def test_precomputed_table_matches_lazy(self, name, system):
        lazy = TransitionKernel(system)
        table = TransitionKernel(system, precompute=True)
        assert table.table_size == table.num_neighborhoods()
        for configuration in _sample_configurations(system, count=15):
            assert table.enabled_processes(
                configuration
            ) == lazy.enabled_processes(configuration)
            assert _normalize(
                table.resolved_actions(configuration)
            ) == _normalize(lazy.resolved_actions(configuration))


@pytest.mark.parametrize("name,system", ZOO, ids=ZOO_IDS)
def test_sample_step_consumes_identical_random_stream(name, system):
    kernel = TransitionKernel(system)
    rng_legacy = RandomSource(97)
    rng_kernel = RandomSource(97)
    picker = RandomSource(3)
    for configuration in _sample_configurations(system, count=20, seed=5):
        enabled = system.enabled_processes(configuration)
        if not enabled:
            continue
        subset = [p for p in enabled if picker.coin()] or [enabled[0]]
        legacy = system.sample_step(configuration, subset, rng_legacy)
        fast = kernel.sample_step(configuration, subset, rng_kernel)
        assert legacy == fast
    # Both sources must be in the same state afterwards.
    assert rng_legacy.random() == rng_kernel.random()


@pytest.mark.parametrize(
    "sampler_factory",
    [
        SynchronousSampler,
        CentralRandomizedSampler,
        DistributedRandomizedSampler,
        RoundRobinSampler,
    ],
    ids=lambda f: f.name,
)
@pytest.mark.parametrize("seed", [0, 1, 2008])
def test_sampled_traces_identical_across_paths(sampler_factory, seed):
    for _, system in ZOO:
        initial = random_configuration(system, RandomSource(seed + 1))
        legacy = run(
            system,
            sampler_factory(),
            initial,
            max_steps=300,
            rng=RandomSource(seed),
            use_kernel=False,
        )
        fast = run(
            system,
            sampler_factory(),
            initial,
            max_steps=300,
            rng=RandomSource(seed),
        )
        assert legacy.configurations == fast.configurations
        assert legacy.steps == fast.steps


def test_cursor_tracks_enabled_incrementally():
    system = make_token_ring_system(8)
    kernel = TransitionKernel(system)
    cursor = KernelCursor(kernel, next(system.all_configurations()))
    rng = RandomSource(13)
    picker = RandomSource(14)
    for _ in range(200):
        enabled = cursor.enabled
        assert enabled == system.enabled_processes(cursor.configuration)
        if not enabled:
            break
        subset = [p for p in enabled if picker.coin()] or [enabled[-1]]
        cursor.advance(subset, rng)


@pytest.mark.parametrize(
    "relation_factory",
    [CentralRelation, SynchronousRelation, DistributedRelation],
    ids=lambda f: f.name,
)
def test_statespace_exploration_identical(relation_factory):
    for name, system in (
        ("token-ring-5", make_token_ring_system(5)),
        ("herman-5", make_herman_system(5)),
    ):
        legacy = StateSpace.explore(
            system, relation_factory(), use_kernel=False
        )
        fast = StateSpace.explore(system, relation_factory())
        assert legacy.configurations == fast.configurations
        assert legacy.index == fast.index
        assert legacy.edges == fast.edges
        assert legacy.enabled == fast.enabled


@pytest.mark.parametrize(
    "distribution_factory",
    [
        CentralRandomizedDistribution,
        SynchronousDistribution,
        lambda: BernoulliDistribution(0.3),
    ],
    ids=["central-randomized", "synchronous", "bernoulli-0.3"],
)
def test_chain_rows_identical(distribution_factory):
    for system in (make_token_ring_system(5), make_herman_system(5)):
        legacy = build_chain(system, distribution_factory(), use_kernel=False)
        fast = build_chain(system, distribution_factory())
        assert legacy.states == fast.states
        assert legacy.rows == fast.rows


def test_run_until_and_montecarlo_identical_across_paths():
    system = make_leader_tree_system(random_tree(9, RandomSource(3)))
    initial = random_configuration(system, RandomSource(8))
    legacy = run_until(
        system,
        DistributedRandomizedSampler(),
        initial,
        stop=system.is_terminal,
        max_steps=20_000,
        rng=RandomSource(6),
        use_kernel=False,
    )
    kernel = TransitionKernel(system)
    fast = run_until(
        system,
        DistributedRandomizedSampler(),
        initial,
        stop=kernel.is_terminal,
        max_steps=20_000,
        rng=RandomSource(6),
        kernel=kernel,
        record=False,
    )
    assert legacy.converged == fast.converged
    assert legacy.steps_taken == fast.steps_taken
    assert legacy.trace.final == fast.trace.final
    # Compact traces retain only the endpoints and refuse
    # history-derived queries instead of answering from thin air.
    assert len(fast.trace.configurations) <= 2
    assert fast.trace.initial == initial
    assert not fast.trace.has_full_history
    with pytest.raises(ModelError):
        fast.trace.acting_sets()
    with pytest.raises(ModelError):
        fast.trace.visits(initial)

    result = estimate_stabilization_time(
        system,
        DistributedRandomizedSampler(),
        system.is_terminal,
        trials=25,
        max_steps=20_000,
        rng=RandomSource(21),
    )
    assert result.converged == result.trials
    assert result.stats is not None and result.stats.mean > 0


def test_montecarlo_runner_batch_scalar_matches_separate_estimates():
    """The oracle escape hatch: a scalar-engine ``batch`` is bit-equal
    to sequential estimates (same kernel, same random streams)."""
    system = make_leader_tree_system(path(6))
    cases = [
        dict(
            sampler=DistributedRandomizedSampler(),
            legitimate=system.is_terminal,
            trials=10,
            max_steps=10_000,
            rng=RandomSource(31),
        ),
        dict(
            sampler=SynchronousSampler(),
            legitimate=system.is_terminal,
            trials=10,
            max_steps=10_000,
            rng=RandomSource(32),
        ),
    ]
    runner = MonteCarloRunner(system, engine="scalar")
    batched = runner.batch([dict(case, rng=RandomSource(case["rng"].seed))
                            for case in cases])
    separate = [
        estimate_stabilization_time(system, engine="scalar", **case)
        for case in cases
    ]
    assert len(batched) == len(separate)
    for fast, reference in zip(batched, separate):
        assert fast == reference
    # The batch shared one kernel: its tables saturated, not re-resolved.
    assert runner.kernel.resolutions == runner.kernel.table_size


def test_montecarlo_runner_batch_fuses_through_sweep_runner():
    """Default-engine ``batch`` routes fusable cases through the fused
    sweep engine: full convergence, structural outcomes matching the
    per-case estimates, input order preserved."""
    system = make_leader_tree_system(path(6))
    cases = [
        dict(
            sampler=DistributedRandomizedSampler(),
            legitimate=system.is_terminal,
            trials=10,
            max_steps=10_000,
            rng=RandomSource(31),
        ),
        dict(
            sampler=DistributedRandomizedSampler(),
            legitimate=system.is_terminal,
            trials=12,
            max_steps=10_000,
            rng=RandomSource(32),
        ),
        # Round measurement cannot fuse: the oracle escape hatch keeps
        # the sequential path (and its exact random stream) for it.
        dict(
            sampler=DistributedRandomizedSampler(),
            legitimate=system.is_terminal,
            trials=5,
            max_steps=10_000,
            rng=RandomSource(33),
            measure_rounds=True,
        ),
    ]
    runner = MonteCarloRunner(system)
    batched = runner.batch([dict(case) for case in cases])
    assert [result.trials for result in batched] == [10, 12, 5]
    assert all(result.censored == 0 for result in batched)
    assert batched[2].round_stats is not None
    sequential = MonteCarloRunner(system).estimate(
        **dict(cases[2], rng=RandomSource(33))
    )
    assert batched[2] == sequential


def test_kernel_rejects_disabled_and_empty_subsets():
    system = make_token_ring_system(4)
    kernel = TransitionKernel(system)
    configuration = next(system.all_configurations())
    disabled = [
        p
        for p in system.processes
        if not system.is_enabled(configuration, p)
    ]
    rng = RandomSource(0)
    with pytest.raises(SchedulerError):
        kernel.sample_step(configuration, [], rng)
    if disabled:
        with pytest.raises(SchedulerError):
            kernel.sample_step(configuration, [disabled[0]], rng)
    with pytest.raises(MarkovError):
        MonteCarloRunner(system).estimate(
            CentralRandomizedSampler(),
            system.is_terminal,
            trials=1,
            max_steps=10,
            rng=rng,
            initial_configurations=[],
        )


def test_kernel_proxies_system_attributes():
    system = make_token_ring_system(4)
    kernel = TransitionKernel(system)
    assert kernel.system is system
    assert kernel.num_processes == system.num_processes
    assert kernel.topology is system.topology
    assert kernel.algorithm is system.algorithm
    assert kernel.num_configurations() == system.num_configurations()
