"""Unit + property tests for the Markov analysis stack."""

import math

import numpy as np
import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.errors import MarkovError
from repro.markov.builder import build_chain
from repro.markov.chain import MarkovChain
from repro.markov.hitting import (
    absorption_probabilities,
    expected_hitting_times,
    hitting_summary,
)
from repro.markov.lumping import lumped_synchronous_transformed_chain
from repro.markov.montecarlo import (
    estimate_stabilization_time,
    random_configuration,
)
from repro.random_source import RandomSource
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
    SynchronousDistribution,
)
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    SynchronousSampler,
)
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system


class TestBuilder:
    def test_rows_sum_to_one(self, ring5_system):
        chain = build_chain(ring5_system, CentralRandomizedDistribution())
        for row in chain.rows:
            assert math.isclose(sum(row.values()), 1.0, abs_tol=1e-9)

    def test_terminal_self_loop(self, two_process_system):
        chain = build_chain(two_process_system, CentralRandomizedDistribution())
        terminal_id = chain.id_of(((True,), (True,)))
        assert chain.rows[terminal_id] == {terminal_id: 1.0}

    def test_full_space_states(self, ring5_system):
        chain = build_chain(ring5_system, CentralRandomizedDistribution())
        assert chain.num_states == 32

    def test_restricted_initial(self, two_process_system):
        chain = build_chain(
            two_process_system,
            CentralRandomizedDistribution(),
            initial=[((False,), (False,))],
        )
        assert chain.num_states == 3  # (T,T) unreachable centrally

    def test_budget(self, ring6_system):
        with pytest.raises(MarkovError):
            build_chain(
                ring6_system,
                CentralRandomizedDistribution(),
                max_states=100,
            )

    def test_bernoulli_lazy_self_loops(self, two_process_system):
        chain = build_chain(
            two_process_system, BernoulliDistribution(0.5, True)
        )
        start = chain.id_of(((False,), (False,)))
        # empty draw probability 1/4 contributes a self-loop
        assert chain.probability(start, start) >= 0.25

    def test_probabilities_match_hand_computation(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        start = chain.id_of(((False,), (False,)))
        # three equally likely subsets: {0}, {1}, {0,1}
        assert math.isclose(
            chain.probability(start, chain.id_of(((True,), (True,)))),
            1 / 3,
        )
        assert math.isclose(
            chain.probability(start, chain.id_of(((True,), (False,)))),
            1 / 3,
        )


class TestChain:
    def test_row_validation(self, two_process_system):
        with pytest.raises(MarkovError):
            MarkovChain(
                two_process_system,
                [((False,), (False,))],
                [{0: 0.5}],
                "bad",
            )

    def test_negative_probability_rejected(self, two_process_system):
        with pytest.raises(MarkovError):
            MarkovChain(
                two_process_system,
                [((False,), (False,)), ((True,), (True,))],
                [{0: 1.5, 1: -0.5}, {1: 1.0}],
                "bad",
            )

    def test_states_rows_length_mismatch(self, two_process_system):
        with pytest.raises(MarkovError):
            MarkovChain(two_process_system, [], [{0: 1.0}], "bad")

    def test_dense_equals_sparse(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        dense = chain.dense_matrix()
        sparse = chain.sparse_matrix().toarray()
        assert np.allclose(dense, sparse)

    def test_mark(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        marked = chain.mark(BothTrueSpec().legitimate)
        assert marked.sum() == 1

    def test_step_distribution(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        uniform = np.full(chain.num_states, 0.25)
        pushed = chain.step_distribution(uniform)
        assert math.isclose(pushed.sum(), 1.0)

    def test_step_distribution_shape_check(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        with pytest.raises(MarkovError):
            chain.step_distribution([1.0])

    def test_id_of_unknown(self, two_process_system):
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        with pytest.raises(MarkovError):
            chain.id_of(((True,),))


class TestHitting:
    def test_absorption_all_ones_for_weak_stab(self, ring5_system):
        chain = build_chain(ring5_system, CentralRandomizedDistribution())
        target = chain.mark(TokenCirculationSpec().legitimate)
        absorption = absorption_probabilities(chain, target)
        assert np.all(absorption > 1 - 1e-9)

    def test_absorption_zero_when_unreachable(self, two_process_system):
        chain = build_chain(
            two_process_system, CentralRandomizedDistribution()
        )
        target = chain.mark(BothTrueSpec().legitimate)
        absorption = absorption_probabilities(chain, target)
        assert absorption[chain.id_of(((False,), (False,)))] == 0.0
        assert absorption[chain.id_of(((True,), (True,)))] == 1.0

    def test_expected_times_finite_and_positive(self, ring5_system):
        chain = build_chain(ring5_system, CentralRandomizedDistribution())
        target = chain.mark(TokenCirculationSpec().legitimate)
        times = expected_hitting_times(chain, target)
        assert np.all(np.isfinite(times))
        assert np.all(times[~target] > 0)
        assert np.all(times[target] == 0)

    def test_expected_times_infinite_when_not_absorbing(
        self, two_process_system
    ):
        chain = build_chain(
            two_process_system, CentralRandomizedDistribution()
        )
        target = chain.mark(BothTrueSpec().legitimate)
        times = expected_hitting_times(chain, target)
        assert math.isinf(times[chain.id_of(((False,), (False,)))])

    def test_empty_target_rejected(self, two_process_system):
        chain = build_chain(
            two_process_system, CentralRandomizedDistribution()
        )
        with pytest.raises(MarkovError):
            absorption_probabilities(
                chain, np.zeros(chain.num_states, dtype=bool)
            )

    def test_shape_mismatch_rejected(self, two_process_system):
        chain = build_chain(
            two_process_system, CentralRandomizedDistribution()
        )
        with pytest.raises(MarkovError):
            absorption_probabilities(chain, np.array([True]))

    def test_summary_converging(self, ring5_system):
        chain = build_chain(ring5_system, CentralRandomizedDistribution())
        summary = hitting_summary(
            chain, chain.mark(TokenCirculationSpec().legitimate)
        )
        assert summary.converges_with_probability_one
        assert summary.worst_expected_steps >= summary.mean_expected_steps
        assert summary.row()["prob1"] is True

    def test_summary_non_converging(self, two_process_system):
        chain = build_chain(
            two_process_system, CentralRandomizedDistribution()
        )
        summary = hitting_summary(
            chain, chain.mark(BothTrueSpec().legitimate)
        )
        assert not summary.converges_with_probability_one
        assert math.isinf(summary.worst_expected_steps)

    def test_gamblers_ruin_sanity(self):
        """Hand-checkable chain: E[steps] for symmetric walk on 0..2
        absorbing at 2 from 0 is 4, from 1 is 3... (standard values)."""
        system = make_two_process_system()  # only carries the type; states
        states = [((False,), (False,)), ((True,), (False,)),
                  ((True,), (True,))]
        rows = [
            {0: 0.5, 1: 0.5},
            {0: 0.5, 2: 0.5},
            {2: 1.0},
        ]
        chain = MarkovChain(system, states, rows, "hand")
        target = np.array([False, False, True])
        times = expected_hitting_times(chain, target)
        assert math.isclose(times[0], 6.0)
        assert math.isclose(times[1], 4.0)


class TestLumping:
    @pytest.mark.parametrize("maker,spec", [
        (make_two_process_system, BothTrueSpec()),
        (lambda: make_token_ring_system(4), TokenCirculationSpec()),
    ])
    def test_lumped_matches_full_chain(self, maker, spec):
        base = maker()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(spec, base)
        full = build_chain(transformed, SynchronousDistribution())
        full_summary = hitting_summary(full, full.mark(tspec.legitimate))
        lumped = lumped_synchronous_transformed_chain(base)
        lumped_summary = hitting_summary(
            lumped, lumped.mark(spec.legitimate)
        )
        assert math.isclose(
            full_summary.worst_expected_steps,
            lumped_summary.worst_expected_steps,
            rel_tol=1e-9,
        )
        assert math.isclose(
            full_summary.mean_expected_steps,
            lumped_summary.mean_expected_steps,
            rel_tol=1e-9,
        )


class TestMonteCarlo:
    def test_estimates_match_exact(self, two_process_system):
        """MC mean under the central randomized sampler vs exact chain."""
        chain = build_chain(
            two_process_system, DistributedRandomizedDistribution()
        )
        target = chain.mark(BothTrueSpec().legitimate)
        exact_mean_over_all = float(
            expected_hitting_times(chain, target).mean()
        )
        from repro.schedulers.samplers import DistributedRandomizedSampler

        result = estimate_stabilization_time(
            two_process_system,
            DistributedRandomizedSampler(),
            lambda c: BothTrueSpec().legitimate(two_process_system, c),
            trials=3000,
            max_steps=10_000,
            rng=RandomSource(5),
        )
        assert result.censored == 0
        assert abs(result.stats.mean - exact_mean_over_all) < 0.4

    def test_random_configuration_valid(self, ring6_system, rng):
        for _ in range(20):
            ring6_system.check_configuration(
                random_configuration(ring6_system, rng)
            )

    def test_censoring_counted(self, two_process_system):
        result = estimate_stabilization_time(
            two_process_system,
            CentralRandomizedSampler(),
            lambda c: BothTrueSpec().legitimate(two_process_system, c),
            trials=20,
            max_steps=50,
            rng=RandomSource(1),
            initial_configurations=[((False,), (False,))],
        )
        # central scheduler can never converge from (F,F)
        assert result.converged == 0
        assert result.censored == 20
        assert result.stats is None
        assert result.convergence_rate == 0.0

    def test_trial_validation(self, two_process_system):
        with pytest.raises(MarkovError):
            estimate_stabilization_time(
                two_process_system,
                CentralRandomizedSampler(),
                lambda c: True,
                trials=0,
                max_steps=1,
                rng=RandomSource(0),
            )

    def test_row_includes_stats(self, two_process_system):
        result = estimate_stabilization_time(
            two_process_system,
            SynchronousSampler(),
            lambda c: BothTrueSpec().legitimate(two_process_system, c),
            trials=10,
            max_steps=100,
            rng=RandomSource(2),
        )
        row = result.row()
        assert row["trials"] == 10
        assert "mean" in row
