"""MDP tier: daemons as optimization variables.

Covers the wire-format invariants of :func:`repro.markov.mdp.build_mdp`,
engine-string validation, the synchronous pin (a choice-free daemon
family must reproduce the exact chain bit-for-tolerance), the per-state
``best ≤ expected ≤ worst`` sandwich against the PR 4 compiled chain,
and the paper-faithful Theorem 2 separation (the distributed adversary
starves the token ring while the randomized daemon converges).
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance_registry import conformance_entry, conformance_system
from repro.errors import MarkovError
from repro.markov.builder import build_chain
from repro.markov.hitting import (
    absorption_probabilities,
    expected_hitting_times,
)
from repro.markov.mdp import MDP_DAEMONS, MDP_OBJECTIVES, build_mdp
from repro.schedulers.distributions import SynchronousDistribution
from repro.stabilization.adversarial import (
    best_case_convergence,
    daemon_bracket,
    randomized_distribution_for,
    worst_case_convergence,
)

#: Registry systems with full spaces small enough for exact analysis —
#: the same set the chain conformance tier uses.
BRACKET_SYSTEMS = (
    "token-ring5",
    "herman-ring5",
    "israeli-jalfon-ring6",
    "leader-path5",
    "coloring-star4",
)


def _spec(name):
    """System plus its legitimacy in ``mark()``'s scalar two-arg form."""
    entry = conformance_entry(name)
    system = conformance_system(name)
    one_arg = entry.legitimate(system)
    return system, lambda _system, configuration: one_arg(configuration)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_build_mdp_rejects_unknown_daemon():
    system = conformance_system("token-ring5")
    with pytest.raises(MarkovError, match="unknown daemon") as excinfo:
        build_mdp(system, daemon="chaotic")
    for daemon in MDP_DAEMONS:
        assert daemon in str(excinfo.value)


def test_solvers_reject_unknown_objective():
    system = conformance_system("token-ring5")
    mdp = build_mdp(system, daemon="central")
    target = mdp.mark(_spec("token-ring5")[1])
    with pytest.raises(MarkovError, match="unknown objective") as excinfo:
        mdp.reachability(target, "best")
    for objective in MDP_OBJECTIVES:
        assert objective in str(excinfo.value)
    with pytest.raises(MarkovError, match="unknown objective"):
        mdp.expected_hitting_times(target, "worst")


def test_randomized_distribution_for_rejects_unknown_daemon():
    with pytest.raises(MarkovError, match="unknown daemon"):
        randomized_distribution_for("fair")


# ----------------------------------------------------------------------
# wire-format invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("daemon", sorted(MDP_DAEMONS))
def test_wire_format_is_well_formed(daemon):
    system = conformance_system("token-ring5")
    mdp = build_mdp(system, daemon=daemon)
    # Every state has at least one action (terminal states self-loop)…
    assert (np.diff(mdp.action_indptr) >= 1).all()
    assert mdp.action_indptr[0] == 0
    assert mdp.action_indptr[-1] == mdp.num_actions
    # …every action has at least one edge…
    assert (np.diff(mdp.edge_indptr) >= 1).all()
    # …and every action's outgoing probabilities sum to one (zero-mass
    # branches are dropped at build time).
    sums = np.add.reduceat(mdp.edge_prob, mdp.edge_indptr[:-1])
    assert np.allclose(sums, 1.0, atol=1e-12)
    assert (mdp.edge_prob > 0.0).all()
    assert (0 <= mdp.edge_target).all()
    assert (mdp.edge_target < mdp.num_states).all()


def test_mdp_states_align_with_chain_states():
    system, scalar = _spec("token-ring5")
    mdp = build_mdp(system, daemon="central")
    chain = build_chain(system, randomized_distribution_for("central"))
    assert list(mdp.states) == list(chain.states)
    assert (
        mdp.mark(scalar) == np.asarray(chain.mark(scalar), dtype=bool)
    ).all()


# ----------------------------------------------------------------------
# synchronous pin: a choice-free family must equal the exact chain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["token-ring5", "herman-ring5"])
def test_synchronous_mdp_matches_exact_chain(name):
    """The synchronous daemon has exactly one action per state, so min
    and max both collapse to the chain solved by the PR 4 pipeline —
    on deterministic (token ring) and probabilistic (Herman) dynamics."""
    system, scalar = _spec(name)
    mdp = build_mdp(system, daemon="synchronous")
    chain = build_chain(system, SynchronousDistribution())
    target = mdp.mark(scalar)
    absorption = absorption_probabilities(
        chain, np.asarray(chain.mark(scalar), dtype=bool)
    )
    times = expected_hitting_times(
        chain, np.asarray(chain.mark(scalar), dtype=bool)
    )
    for objective in ("min", "max"):
        reach = mdp.reachability(target, objective)
        assert np.allclose(reach, absorption, atol=1e-9)
        optimized = mdp.expected_hitting_times(target, objective)
        finite = np.isfinite(times)
        assert (np.isfinite(optimized) == finite).all()
        assert np.allclose(optimized[finite], times[finite], atol=1e-6)


# ----------------------------------------------------------------------
# the sandwich: best ≤ randomized chain ≤ worst, per state
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BRACKET_SYSTEMS)
def test_per_state_daemon_sandwich(name):
    """The randomized central daemon is one strategy inside the central
    MDP's strategy space, so its exact per-state hitting times must be
    bracketed by the optimized ones (``inf``-aware)."""
    system, scalar = _spec(name)
    mdp = build_mdp(system, daemon="central")
    chain = build_chain(system, randomized_distribution_for("central"))
    target = mdp.mark(scalar)
    expected = expected_hitting_times(
        chain, np.asarray(chain.mark(scalar), dtype=bool)
    )
    best = mdp.expected_hitting_times(target, "min")
    worst = mdp.expected_hitting_times(target, "max")
    tolerance = 1e-6
    # Wherever the randomized chain converges, some daemon does too.
    finite = np.isfinite(expected)
    assert np.isfinite(best[finite]).all()
    assert (best[finite] <= expected[finite] + tolerance).all()
    both = finite & np.isfinite(worst)
    assert (expected[both] <= worst[both] + tolerance).all()
    # And the reach probabilities bracket the chain's absorption mass.
    absorption = absorption_probabilities(
        chain, np.asarray(chain.mark(scalar), dtype=bool)
    )
    reach_best = mdp.reachability(target, "max")
    reach_worst = mdp.reachability(target, "min")
    assert (reach_best >= absorption - 1e-9).all()
    assert (reach_worst <= absorption + 1e-9).all()


@pytest.mark.parametrize("name", BRACKET_SYSTEMS[:4])
def test_daemon_bracket_is_ordered(name):
    """Satellite invariant: aggregate ``best ≤ expected ≤ worst`` for
    every registry algorithm's bracket."""
    entry = conformance_entry(name)
    system = conformance_system(name)
    spec_predicate = entry.legitimate(system)

    class _Spec:
        name = entry.name

        @staticmethod
        def legitimate(_, configuration):
            return spec_predicate(configuration)

    bracket = daemon_bracket(system, _Spec(), daemon="central")
    assert bracket.ordered, bracket.row()
    assert bracket.best.mean_expected_steps <= (
        bracket.expected.mean_expected_steps + 1e-6
    )


# ----------------------------------------------------------------------
# Theorem 2, quantitatively: the adversary separates weak from self
# ----------------------------------------------------------------------
def test_token_ring_distributed_adversary_starves():
    system, scalar = _spec("token-ring5")
    entry = conformance_entry("token-ring5")

    class _Spec:
        name = "token-circulation"

        @staticmethod
        def legitimate(system_, configuration):
            return scalar(system_, configuration)

    worst = worst_case_convergence(system, _Spec(), daemon="distributed")
    best = best_case_convergence(system, _Spec(), daemon="distributed")
    # The hostile distributed daemon starves the ring from some state…
    assert not worst.converges_with_probability_one
    assert worst.max_nonconvergence_probability > 0.5
    assert worst.mean_expected_steps == float("inf")
    # …while a helpful daemon of the *same family* always converges
    # (weak stabilization), and so does the randomized one (Theorem 7).
    assert best.converges_with_probability_one
    assert np.isfinite(best.mean_expected_steps)
    chain = build_chain(system, randomized_distribution_for("distributed"))
    times = expected_hitting_times(
        chain, np.asarray(chain.mark(entry.batch_legitimate), dtype=bool)
    )
    assert np.isfinite(times).all()
