"""The m_N memory bound of [3], demonstrated by breaking it.

The paper notes Algorithm 1's ``log m_N`` bits match the lower bound of
Beauquier–Gradinariu–Johnen for (probabilistic) token circulation under a
distributed scheduler.  These tests show the bound is *tight in this
construction*: running the same protocol with a counter modulus that
divides N admits token-free configurations — illegitimate deadlocks — so
neither weak nor probabilistic stabilization survives, while any
non-divisor modulus (not just the smallest) preserves Lemma 4.
"""

import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    TokenRingAlgorithm,
    count_tokens,
    make_token_ring_system,
)
from repro.core.system import System
from repro.core.topology import OrientedRing
from repro.errors import ModelError
from repro.graphs.generators import ring
from repro.markov.builder import build_chain
from repro.schedulers.distributions import CentralRandomizedDistribution
from repro.schedulers.relations import DistributedRelation
from repro.stabilization.classify import classify
from repro.stabilization.probabilistic import classify_probabilistic


def _system(n: int, modulus: int) -> System:
    return System(
        TokenRingAlgorithm(n, modulus=modulus), OrientedRing(ring(n))
    )


class TestDividingModulusBreaksEverything:
    @pytest.mark.parametrize(
        "n,modulus", [(6, 3), (6, 2), (4, 2), (8, 4)],
        ids=["N6-m3", "N6-m2", "N4-m2", "N8-m4"],
    )
    def test_token_free_configurations_exist(self, n, modulus):
        system = _system(n, modulus)
        token_free = [
            configuration
            for configuration in system.all_configurations()
            if count_tokens(system, configuration) == 0
        ]
        assert token_free  # Lemma 4 fails when modulus | N
        for configuration in token_free:
            assert system.is_terminal(configuration)

    def test_not_weak_stabilizing(self):
        verdict = classify(
            _system(6, 3), TokenCirculationSpec(), DistributedRelation()
        )
        assert not verdict.is_weak_stabilizing
        assert verdict.num_terminal_outside > 0

    def test_not_probabilistically_stabilizing(self):
        verdict = classify_probabilistic(
            _system(6, 3),
            TokenCirculationSpec(),
            CentralRandomizedDistribution(),
        )
        assert not verdict.is_probabilistically_self_stabilizing
        assert verdict.min_absorption < 1.0


class TestNonDivisorModuliWork:
    @pytest.mark.parametrize(
        "n,modulus", [(6, 4), (6, 5), (4, 3), (5, 2), (5, 3)],
        ids=["N6-m4", "N6-m5", "N4-m3", "N5-m2", "N5-m3"],
    )
    def test_lemma4_holds(self, n, modulus):
        assert n % modulus != 0
        system = _system(n, modulus)
        assert all(
            count_tokens(system, configuration) >= 1
            for configuration in system.all_configurations()
        )

    def test_larger_non_divisor_still_weak_stabilizing(self):
        """m = 5 on N = 6 works too — m_N is about *minimality*, not
        uniqueness."""
        verdict = classify(
            _system(6, 5), TokenCirculationSpec(), DistributedRelation()
        )
        assert verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing

    def test_default_is_smallest_non_divisor(self):
        assert TokenRingAlgorithm(6).modulus == 4
        assert TokenRingAlgorithm(6, modulus=5).modulus == 5

    def test_modulus_validation(self):
        with pytest.raises(ModelError):
            TokenRingAlgorithm(6, modulus=1)


class TestMemoryCost:
    def test_probabilistic_convergence_speed_vs_modulus(self):
        """Both m=4 (minimal) and m=5 stabilize on N=6; the larger
        counter is slower on average — minimality is also efficiency."""
        from repro.markov.hitting import hitting_summary

        means = {}
        for modulus in (4, 5):
            system = _system(6, modulus)
            chain = build_chain(system, CentralRandomizedDistribution())
            summary = hitting_summary(
                chain, chain.mark(TokenCirculationSpec().legitimate)
            )
            assert summary.converges_with_probability_one
            means[modulus] = summary.mean_expected_steps
        assert means[4] < means[5]
