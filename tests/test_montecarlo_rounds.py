"""Tests for the rounds-aware Monte-Carlo extension."""

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.markov.montecarlo import estimate_stabilization_time
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    SynchronousSampler,
)
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system


class TestRoundsMeasurement:
    def test_rounds_never_exceed_steps(self):
        system = make_token_ring_system(5)
        spec = TokenCirculationSpec()
        result = estimate_stabilization_time(
            system,
            CentralRandomizedSampler(),
            lambda c: spec.legitimate(system, c),
            trials=100,
            max_steps=10_000,
            rng=RandomSource(3),
            measure_rounds=True,
        )
        assert result.round_stats is not None
        assert result.round_stats.mean <= result.stats.mean + 1e-9

    def test_synchronous_rounds_equal_steps(self):
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(BothTrueSpec(), base)
        result = estimate_stabilization_time(
            transformed,
            SynchronousSampler(),
            lambda c: tspec.legitimate(transformed, c),
            trials=200,
            max_steps=10_000,
            rng=RandomSource(4),
            measure_rounds=True,
        )
        # under the synchronous scheduler every step is one round
        assert result.round_stats.mean == result.stats.mean

    def test_rounds_omitted_by_default(self):
        system = make_token_ring_system(4)
        spec = TokenCirculationSpec()
        result = estimate_stabilization_time(
            system,
            CentralRandomizedSampler(),
            lambda c: spec.legitimate(system, c),
            trials=10,
            max_steps=10_000,
            rng=RandomSource(5),
        )
        assert result.round_stats is None

    def test_round_gap_visible_under_central(self):
        """On a many-token start, central scheduling pays ≈|Enabled|
        steps per round, so steps must exceed rounds noticeably."""
        system = make_token_ring_system(6)
        spec = TokenCirculationSpec()
        result = estimate_stabilization_time(
            system,
            CentralRandomizedSampler(),
            lambda c: spec.legitimate(system, c),
            trials=200,
            max_steps=10_000,
            rng=RandomSource(6),
            measure_rounds=True,
        )
        assert result.round_stats.mean < result.stats.mean
