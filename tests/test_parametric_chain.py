"""Parametric-chain oracle contract: re-instantiation is bit-identical.

:class:`~repro.markov.parametric.ParametricChain` builds CSR structure
once and re-instantiates only the ``data`` vector per parameter point.
Its oracle is the concrete compiled builder: at *any* concrete
assignment, the re-instantiated chain must equal — bit for bit, no
tolerance — what ``build_chain(engine="compiled")`` produces for a
system constructed at those biases.  This holds over the whole
conformance registry (non-parametric systems instantiate their baked
tables verbatim), in full-space and frontier modes, and the cached-LU
hitting solver must agree with the reference solver on every system.

Also covers the :mod:`repro.core.parametric` substrate (affine forms,
coin declarations, the ≤ 3-parameter compile budget) and the
MarkovError parity between ``ParametricChain`` and
``build_chain(engine="compiled")`` when tables cannot compile.
"""

from __future__ import annotations

import numpy as np
import pytest
from conformance_registry import CONFORMANCE_SYSTEMS, conformance_entry

from repro.algorithms.herman_ring import HermanSingleTokenSpec
from repro.algorithms.herman_variants import (
    make_herman_random_bit_system,
    make_herman_random_pass_system,
    make_herman_speed_reducer2_system,
    make_herman_speed_reducer_system,
)
from repro.core.encoding import compile_tables
from repro.core.kernel import TransitionKernel
from repro.core.parametric import (
    MAX_COIN_PARAMETERS,
    AffineProbability,
    CoinParameter,
    affine_array_bounds,
    affine_terms,
    evaluate_affine,
    evaluate_affine_arrays,
)
from repro.errors import MarkovError, ModelError
from repro.markov.builder import build_chain
from repro.markov.hitting import expected_hitting_times
from repro.markov.parametric import ParametricChain, build_parametric_chain
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
    SynchronousDistribution,
)

DISTRIBUTIONS = {
    "synchronous": SynchronousDistribution,
    "central": CentralRandomizedDistribution,
    "distributed": DistributedRandomizedDistribution,
    "bernoulli": lambda: BernoulliDistribution(0.7),
}

#: (registry name, declared sampler key) for the whole matrix.
MATRIX = [
    (entry.name, sampler_key)
    for entry in CONFORMANCE_SYSTEMS
    for sampler_key, _ in entry.sampler_modes
]

#: Parametric Herman variants with off-default concrete bias points.
VARIANT_POINTS = {
    "random-bit": (
        lambda **kw: make_herman_random_bit_system(5, **kw),
        [{"bias": 0.3}, {"bias": 0.71}],
        lambda kw: {"p": kw["bias"]},
    ),
    "random-pass": (
        lambda **kw: make_herman_random_pass_system(5, **kw),
        [{"bias": 0.25}, {"bias": 0.9}],
        lambda kw: {"p": kw["bias"]},
    ),
    "speed-reducer": (
        lambda **kw: make_herman_speed_reducer_system(5, **kw),
        [{"bias": 0.8, "wake": 0.2}, {"bias": 0.35, "wake": 0.6}],
        lambda kw: {"p": kw["bias"], "q": kw["wake"]},
    ),
    "speed-reducer2": (
        lambda **kw: make_herman_speed_reducer2_system(5, **kw),
        [
            {"bias": 0.8, "wake": 0.25, "slip": 0.1},
            {"bias": 0.45, "wake": 0.5, "slip": 0.3},
        ],
        lambda kw: {"p": kw["bias"], "q": kw["wake"], "r": kw["slip"]},
    ),
}


def assert_bit_identical(chain, pchain, assignment):
    reference_data, reference_indices, reference_indptr = (
        chain.transition_arrays()
    )
    data = pchain.data_vector(assignment)
    assert np.array_equal(pchain.indices, reference_indices)
    assert np.array_equal(pchain.indptr, reference_indptr)
    assert np.array_equal(data, reference_data)
    instantiated = pchain.instantiate(assignment)
    assert instantiated.states == chain.states
    assert np.array_equal(
        instantiated.transition_arrays()[0], reference_data
    )


# ----------------------------------------------------------------------
# registry-wide oracle equality
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,sampler_key", MATRIX)
def test_registry_instantiation_matches_compiled_builder(name, sampler_key):
    entry = conformance_entry(name)
    system = entry.build()
    distribution = DISTRIBUTIONS[sampler_key]()
    chain = build_chain(system, distribution, engine="compiled")
    pchain = ParametricChain(system, distribution)
    # Raw baked tables (assignment=None) are always available…
    assert_bit_identical(chain, pchain, None)
    # …and for parametric systems the affine evaluation at the
    # construction defaults must reproduce them bit-for-bit.
    if pchain.param_names:
        assert_bit_identical(chain, pchain, pchain.default_assignment)


@pytest.mark.parametrize("name,sampler_key", MATRIX)
def test_registry_hitting_times_match_reference_solver(name, sampler_key):
    entry = conformance_entry(name)
    system = entry.build()
    distribution = DISTRIBUTIONS[sampler_key]()
    chain = build_chain(system, distribution, engine="compiled")
    pchain = ParametricChain(system, distribution)
    predicate = entry.legitimate(system)
    target = chain.mark(lambda _system, cfg: predicate(cfg))
    reference = expected_hitting_times(chain, target)
    if np.isinf(reference).any():
        # Absorption below one somewhere (e.g. deterministic synchronous
        # livelocks): the reference reports ``inf`` there, the sweep
        # solver refuses the whole target by contract.
        with pytest.raises(MarkovError):
            pchain.expected_times(None, target)
        return
    times = pchain.expected_times(None, target)
    assert np.allclose(times, reference, rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# off-default bias points (the actual re-instantiation use case)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(VARIANT_POINTS))
def test_variant_reinstantiation_matches_fresh_concrete_build(family):
    build, points, to_assignment = VARIANT_POINTS[family]
    pchain = ParametricChain(build(), SynchronousDistribution())
    for kwargs in points:
        concrete = build_chain(
            build(**kwargs), SynchronousDistribution(), engine="compiled"
        )
        assert_bit_identical(concrete, pchain, to_assignment(kwargs))


def test_variant_sweep_matches_pointwise_rebuild():
    spec = HermanSingleTokenSpec()
    pchain = ParametricChain(
        make_herman_random_pass_system(5), SynchronousDistribution()
    )
    target = pchain.mark(spec.legitimate)
    grid = [{"p": value} for value in np.linspace(0.2, 0.8, 7)]
    swept = pchain.hitting_sweep(grid, target, objective="mean")
    for assignment, value in zip(grid, swept):
        chain = build_chain(
            make_herman_random_pass_system(5, bias=assignment["p"]),
            SynchronousDistribution(),
            engine="compiled",
        )
        reference = expected_hitting_times(chain, target)
        expected = float(reference[~target].mean())
        assert value == pytest.approx(expected, rel=1e-9)


def test_frontier_mode_matches_compiled_builder():
    from repro.algorithms.herman_ring import herman_token_holders

    system = make_herman_random_bit_system(5, bias=0.6)
    # Seed from a single-token configuration: under the synchronous
    # scheduler the token count never grows, so the forward closure is
    # a strict subset of the space.
    seeds = [
        configuration
        for configuration in system.all_configurations()
        if len(herman_token_holders(system, configuration)) == 1
    ][:1]
    chain = build_chain(
        system,
        SynchronousDistribution(),
        initial=seeds,
        engine="compiled",
    )
    pchain = ParametricChain(
        system, SynchronousDistribution(), initial=seeds
    )
    assert pchain.num_states == chain.num_states
    assert pchain.num_states < system.num_configurations()
    assert_bit_identical(chain, pchain, {"p": 0.6})


# ----------------------------------------------------------------------
# failure parity and validation
# ----------------------------------------------------------------------
def test_uncompilable_tables_raise_like_compiled_engine(monkeypatch):
    import repro.markov.builder as builder_module

    def refuse(*_args, **_kwargs):
        raise ModelError("neighborhood space over budget (forced)")

    monkeypatch.setattr(builder_module, "compile_tables", refuse)
    system = make_herman_random_bit_system(5)
    with pytest.raises(MarkovError):
        build_chain(
            system, SynchronousDistribution(), engine="compiled"
        )
    with pytest.raises(MarkovError):
        ParametricChain(system, SynchronousDistribution())


def test_unknown_parameter_rejected():
    pchain = ParametricChain(
        make_herman_random_bit_system(5), SynchronousDistribution()
    )
    with pytest.raises(ModelError):
        pchain.data_vector({"q": 0.5})


def test_max_states_guard():
    with pytest.raises(MarkovError):
        ParametricChain(
            make_herman_random_bit_system(5),
            SynchronousDistribution(),
            max_states=4,
        )


def test_build_parametric_chain_wrapper():
    pchain = build_parametric_chain(
        make_herman_random_pass_system(5), SynchronousDistribution()
    )
    assert pchain.param_names == ("p",)
    assert pchain.default_assignment == {"p": 0.5}


# ----------------------------------------------------------------------
# affine substrate units
# ----------------------------------------------------------------------
class TestAffineSubstrate:
    def test_scalar_and_array_evaluation_bit_identical(self):
        probability = AffineProbability(
            1.0, {"q": -1.0, "r": -1.0}, {"q": 0.37, "r": 0.21}
        )
        constant, coefficients = affine_terms(probability)
        scalar = evaluate_affine(
            constant, coefficients, {"q": 0.37, "r": 0.21}
        )
        constants = np.array([constant])
        slab = np.array([[-1.0, -1.0]])
        vector = evaluate_affine_arrays(
            constants, slab, ("q", "r"), {"q": 0.37, "r": 0.21}
        )
        assert float(probability) == scalar == vector[0]

    def test_plain_float_has_no_affine_terms(self):
        assert affine_terms(0.5) is None

    def test_invalid_probability_rejected(self):
        with pytest.raises(ModelError):
            AffineProbability(0.0, {"p": 1.0}, {"p": 0.0})
        with pytest.raises(ModelError):
            AffineProbability(1.0, {"p": 1.0}, {"p": 0.5})

    def test_coin_parameter_validation(self):
        with pytest.raises(ModelError):
            CoinParameter("not an identifier", 0.5)
        with pytest.raises(ModelError):
            CoinParameter("p", 0.99, low=0.05, high=0.95)
        coin = CoinParameter("p", 0.5)
        assert float(coin.value(0.3)) == 0.3
        assert float(coin.complement(0.3)) == 0.7

    def test_affine_bounds_bracket_every_grid_point(self):
        constants = np.array([1.0, 0.0])
        slab = np.array([[-1.0, -1.0], [1.0, 0.0]])
        lows = {"q": 0.1, "r": 0.2}
        highs = {"q": 0.4, "r": 0.3}
        lower, upper = affine_array_bounds(
            constants, slab, ("q", "r"), lows, highs
        )
        for q in np.linspace(0.1, 0.4, 5):
            for r in np.linspace(0.2, 0.3, 5):
                point = evaluate_affine_arrays(
                    constants, slab, ("q", "r"), {"q": q, "r": r}
                )
                assert np.all(lower <= point + 1e-15)
                assert np.all(point <= upper + 1e-15)

    def test_too_many_coin_parameters_rejected_at_compile(self):
        from repro.core.actions import Action, Outcome
        from repro.core.algorithm import Algorithm
        from repro.core.system import System
        from repro.core.topology import Topology
        from repro.core.variables import VariableLayout, VarSpec
        from repro.graphs.generators import path

        coins = [
            CoinParameter(f"c{i}", 0.2)
            for i in range(MAX_COIN_PARAMETERS + 1)
        ]

        def _reset(view):
            view.set("x", 0)

        class TooManyCoins(Algorithm):
            name = "too-many-coins"

            def layout(self, topology, process):
                return VariableLayout((VarSpec("x", (0, 1)),))

            @property
            def is_probabilistic(self):
                return True

            def actions(self):
                def _outcomes(view):
                    # 4 coins at 0.2 plus a plain 0.2 remainder: a
                    # valid distribution over 4 > MAX parameters.
                    return tuple(
                        Outcome(coin.value(), _reset) for coin in coins
                    ) + (Outcome(0.2, _reset),)

                return (Action("A", lambda view: True, _outcomes),)

        system = System(TooManyCoins(), Topology(path(2)))
        with pytest.raises(ModelError):
            compile_tables(TransitionKernel(system))
