"""Tests for classify_probabilistic and randomized coloring (Q4 pieces)."""

import math

import pytest

from repro.algorithms.coloring import ProperColoringSpec, make_coloring_system
from repro.algorithms.herman_ring import (
    HermanSingleTokenSpec,
    make_herman_system,
)
from repro.algorithms.randomized_coloring import (
    RandomizedColoringAlgorithm,
    make_randomized_coloring_system,
)
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.errors import ModelError
from repro.experiments.q4 import run_q4
from repro.graphs.generators import complete, path, ring, star
from repro.markov.builder import build_chain
from repro.schedulers.distributions import (
    CentralRandomizedDistribution,
    SynchronousDistribution,
)
from repro.stabilization.probabilistic import classify_probabilistic
from repro.stabilization.specification import PredicateSpecification
from repro.transformer.coin_toss import TransformedSpec, make_transformed_system


class TestClassifyProbabilistic:
    def test_token_ring_positive(self):
        system = make_token_ring_system(5)
        verdict = classify_probabilistic(
            system, TokenCirculationSpec(), CentralRandomizedDistribution()
        )
        assert verdict.is_probabilistically_self_stabilizing
        assert verdict.support_closure
        assert verdict.min_absorption == pytest.approx(1.0)
        assert verdict.worst_expected_steps >= verdict.mean_expected_steps
        assert "probabilistically self-stabilizing" in verdict.summary()

    def test_two_process_central_negative(self):
        system = make_two_process_system()
        verdict = classify_probabilistic(
            system, BothTrueSpec(), CentralRandomizedDistribution()
        )
        assert not verdict.is_probabilistically_self_stabilizing
        assert verdict.min_absorption == 0.0
        assert math.isinf(verdict.worst_expected_steps)
        assert "NOT" in verdict.summary()

    def test_transformed_synchronous_positive(self):
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        verdict = classify_probabilistic(
            transformed,
            TransformedSpec(BothTrueSpec(), base),
            SynchronousDistribution(),
        )
        assert verdict.is_probabilistically_self_stabilizing
        assert verdict.worst_expected_steps == pytest.approx(10.0)

    def test_closure_violation_detected(self):
        """A non-closed 'legitimate' predicate must fail Definition 2(i)."""
        system = make_token_ring_system(4)
        from repro.algorithms.token_ring import count_tokens

        at_least_two = PredicateSpecification(
            "at-least-two-tokens",
            lambda s, c: count_tokens(s, c) >= 2,
        )
        verdict = classify_probabilistic(
            system, at_least_two, CentralRandomizedDistribution()
        )
        assert not verdict.support_closure
        assert verdict.num_closure_violations > 0
        assert not verdict.is_probabilistically_self_stabilizing

    def test_empty_legitimate_set(self):
        system = make_two_process_system()
        never = PredicateSpecification("never", lambda s, c: False)
        verdict = classify_probabilistic(
            system, never, CentralRandomizedDistribution()
        )
        assert verdict.num_legitimate == 0
        assert not verdict.is_probabilistically_self_stabilizing

    def test_chain_reuse(self):
        system = make_token_ring_system(4)
        chain = build_chain(system, CentralRandomizedDistribution())
        verdict = classify_probabilistic(
            system,
            TokenCirculationSpec(),
            CentralRandomizedDistribution(),
            chain=chain,
        )
        assert verdict.num_states == chain.num_states

    def test_herman_verdict(self):
        verdict = classify_probabilistic(
            make_herman_system(5),
            HermanSingleTokenSpec(),
            SynchronousDistribution(),
        )
        assert verdict.is_probabilistically_self_stabilizing


class TestRandomizedColoring:
    def test_default_palette_is_delta_plus_two(self):
        system = make_randomized_coloring_system(star(3))
        assert system.layouts[0].spec("c").size == 5

    def test_palette_validation(self):
        with pytest.raises(ModelError):
            make_randomized_coloring_system(star(3), palette_size=2)

    def test_is_probabilistic(self):
        assert RandomizedColoringAlgorithm().is_probabilistic

    def test_outcomes_uniform(self):
        system = make_randomized_coloring_system(complete(2))
        branches = list(
            system.subset_branches(((0,), (0,)), (0,))
        )
        assert len(branches) == 3  # palette Δ+2 = 3
        assert all(
            math.isclose(b.probability, 1 / 3) for b in branches
        )

    @pytest.mark.parametrize(
        "graph", [complete(2), path(3), ring(4), complete(3)],
        ids=["K2", "P3", "C4", "K3"],
    )
    def test_probabilistically_self_stabilizing_synchronously(self, graph):
        verdict = classify_probabilistic(
            make_randomized_coloring_system(graph),
            ProperColoringSpec(),
            SynchronousDistribution(),
        )
        assert verdict.is_probabilistically_self_stabilizing

    def test_terminal_iff_proper(self):
        system = make_randomized_coloring_system(path(3))
        spec = ProperColoringSpec()
        for configuration in system.all_configurations():
            assert system.is_terminal(configuration) == spec.legitimate(
                system, configuration
            )


class TestQ4Experiment:
    def test_q4_passes(self):
        result = run_q4()
        assert result.passed

    def test_herman_rows_identical_dynamics(self):
        result = run_q4()
        herman_rows = [
            row for row in result.rows if "Herman" in str(row["direct design"])
        ]
        assert len(herman_rows) == 2
        for row in herman_rows:
            assert row["direct mean E[rounds]"] == row["trans mean E[rounds]"]
