"""Property-based tests of the step semantics and checker invariants.

These are the load-bearing invariants of the reproduction: atomicity of
simultaneous steps, scheduler-relation refinement, transformer projection
commutation, and witness validity.  All are quantified over random
configurations/subsets via hypothesis.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.leader_tree import make_leader_tree_system
from repro.algorithms.token_ring import make_token_ring_system
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.core.configuration import replace_local
from repro.graphs.prufer import prufer_decode
from repro.markov.builder import build_chain
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
)
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization.statespace import StateSpace
from repro.transformer.coin_toss import (
    COIN_VARIABLE,
    make_transformed_system,
    project_configuration,
)


def _random_configuration(system, data):
    states = []
    for layout in system.layouts:
        states.append(
            tuple(
                data.draw(st.sampled_from(spec.domain))
                for spec in layout.specs
            )
        )
    return tuple(states)


class TestAtomicity:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=3, max_value=7), st.data())
    def test_simultaneous_step_is_composition_of_solo_writes(self, n, data):
        """Every mover's new state in a joint step equals the state it
        would compute moving alone from the same configuration —
        simultaneity never changes what anyone writes (all reads are
        pre-step)."""
        system = make_token_ring_system(n)
        configuration = _random_configuration(system, data)
        enabled = system.enabled_processes(configuration)
        subset = data.draw(
            st.lists(
                st.sampled_from(sorted(enabled)),
                min_size=1,
                max_size=len(enabled),
                unique=True,
            )
        )
        (joint,) = system.subset_branches(configuration, subset)
        expected = configuration
        for process in subset:
            (solo,) = system.subset_branches(configuration, (process,))
            expected = replace_local(
                expected, process, solo.target[process]
            )
        assert joint.target == expected

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_non_movers_unchanged(self, data):
        n = data.draw(st.integers(min_value=3, max_value=6))
        system = make_token_ring_system(n)
        configuration = _random_configuration(system, data)
        enabled = system.enabled_processes(configuration)
        mover = data.draw(st.sampled_from(sorted(enabled)))
        (branch,) = system.subset_branches(configuration, (mover,))
        for process in system.processes:
            if process != mover:
                assert branch.target[process] == configuration[process]


class TestRelationRefinement:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_central_and_synchronous_subsets_of_distributed(self, data):
        n = data.draw(st.integers(min_value=3, max_value=6))
        system = make_token_ring_system(n)
        configuration = _random_configuration(system, data)
        enabled = system.enabled_processes(configuration)
        distributed = set(DistributedRelation().subsets(enabled))
        assert set(CentralRelation().subsets(enabled)) <= distributed
        assert set(SynchronousRelation().subsets(enabled)) <= distributed

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=5))
    def test_central_spaces_embed_in_distributed(self, n):
        """Every central edge appears in the distributed exploration."""
        system = make_token_ring_system(n)
        central = StateSpace.explore(system, CentralRelation())
        distributed = StateSpace.explore(system, DistributedRelation())
        for source, edges in enumerate(central.edges):
            configuration = central.configurations[source]
            distributed_source = distributed.id_of(configuration)
            distributed_targets = {
                distributed.configurations[t]
                for t in distributed.successors(distributed_source)
            }
            for _, target in edges:
                assert central.configurations[target] in (
                    distributed_targets
                )


class TestTransformerProjection:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_projection_determined_by_coin_winners(self, data):
        """For any transformed branch, the projected target equals the
        base step taken by exactly the movers whose coin landed true —
        the computational heart of Lemmas 1-2."""
        base = make_token_ring_system(
            data.draw(st.integers(min_value=3, max_value=5))
        )
        transformed = make_transformed_system(base)
        configuration = _random_configuration(transformed, data)
        enabled = transformed.enabled_processes(configuration)
        if not enabled:
            return
        subset = data.draw(
            st.lists(
                st.sampled_from(sorted(enabled)),
                min_size=1,
                max_size=len(enabled),
                unique=True,
            )
        )
        coin_slot = transformed.layouts[0].slot(COIN_VARIABLE)
        base_configuration = project_configuration(
            transformed, configuration
        )
        for branch in transformed.subset_branches(configuration, subset):
            winners = tuple(
                p for p in subset if branch.target[p][coin_slot] is True
            )
            projected = project_configuration(transformed, branch.target)
            if winners:
                (base_branch,) = base.subset_branches(
                    base_configuration, winners
                )
                assert projected == base_branch.target
            else:
                assert projected == base_configuration

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_guards_never_read_the_coin(self, data):
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        configuration = _random_configuration(transformed, data)
        coin_slot = transformed.layouts[0].slot(COIN_VARIABLE)
        flipped = tuple(
            state[:coin_slot]
            + (not state[coin_slot],)
            + state[coin_slot + 1:]
            for state in configuration
        )
        assert transformed.enabled_processes(
            configuration
        ) == transformed.enabled_processes(flipped)


class TestWitnessValidity:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=3, max_value=5))
    def test_converging_executions_are_legal(self, n):
        """Every consecutive pair of a witness trace is a real step."""
        from repro.algorithms.token_ring import TokenCirculationSpec
        from repro.stabilization.witnesses import converging_execution

        system = make_token_ring_system(n)
        space = StateSpace.explore(system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        start = next(i for i, ok in enumerate(legitimate) if not ok)
        trace = converging_execution(space, legitimate, start)
        for index, step in enumerate(trace.steps):
            source = trace.configurations[index]
            target = trace.configurations[index + 1]
            subset = sorted(step.acting_processes)
            targets = {
                branch.target
                for branch in system.subset_branches(source, subset)
            }
            assert target in targets


class TestChainInvariants:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=3, max_value=5),
        st.sampled_from(["central", "distributed", "bernoulli"]),
    )
    def test_rows_always_stochastic(self, n, which):
        system = make_token_ring_system(n)
        distribution = {
            "central": CentralRandomizedDistribution(),
            "distributed": DistributedRandomizedDistribution(),
            "bernoulli": BernoulliDistribution(0.5, include_empty=True),
        }[which]
        chain = build_chain(system, distribution)
        for row in chain.rows:
            assert math.isclose(sum(row.values()), 1.0, abs_tol=1e-9)
            assert all(p > 0 for p in row.values())

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_absorption_bounded(self, data):
        import numpy as np

        from repro.markov.hitting import absorption_probabilities

        system = make_two_process_system()
        chain = build_chain(system, CentralRandomizedDistribution())
        target = chain.mark(BothTrueSpec().legitimate)
        absorption = absorption_probabilities(chain, target)
        assert np.all((absorption >= 0) & (absorption <= 1))


class TestTreeAlgorithmsOnRandomTrees:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_terminal_configs_have_one_leader(self, data):
        n = data.draw(st.integers(min_value=2, max_value=7))
        sequence = tuple(
            data.draw(st.integers(min_value=0, max_value=n - 1))
            for _ in range(max(n - 2, 0))
        )
        tree = prufer_decode(sequence, n)
        system = make_leader_tree_system(tree)
        configuration = _random_configuration(system, data)
        if system.is_terminal(configuration):
            from repro.algorithms.leader_tree import leaders, satisfies_lc

            assert len(leaders(system, configuration)) == 1
            assert satisfies_lc(system, configuration)
