"""Public API surface tests: the README contracts must keep working."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_every_declared_export_exists(self, name):
        assert hasattr(repro, name)

    def test_builders_produce_systems(self):
        from repro.core import System

        assert isinstance(repro.make_token_ring_system(4), System)
        from repro.graphs import path

        assert isinstance(repro.make_leader_tree_system(path(3)), System)
        assert isinstance(repro.make_two_process_system(), System)
        assert isinstance(repro.make_dijkstra_system(3), System)
        assert isinstance(repro.make_herman_system(3), System)


class TestSubpackageAllLists:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs",
            "repro.core",
            "repro.schedulers",
            "repro.stabilization",
            "repro.markov",
            "repro.algorithms",
            "repro.transformer",
            "repro.analysis",
            "repro.viz",
            "repro.experiments",
        ],
    )
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_no_duplicate_all_entries(self):
        for module_name in (
            "repro.graphs",
            "repro.core",
            "repro.schedulers",
            "repro.algorithms",
        ):
            module = importlib.import_module(module_name)
            assert len(module.__all__) == len(set(module.__all__))


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catchability(self):
        from repro.errors import GraphError, ReproError
        from repro.graphs import ring

        with pytest.raises(ReproError):
            ring(1)
        with pytest.raises(GraphError):
            ring(1)


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import (
            build_chain,
            classify,
            hitting_summary,
            make_token_ring_system,
        )
        from repro.algorithms import TokenCirculationSpec
        from repro.schedulers import (
            CentralRandomizedDistribution,
            DistributedRelation,
        )

        system = make_token_ring_system(6)
        spec = TokenCirculationSpec()
        verdict = classify(system, spec, DistributedRelation())
        assert "weak-stabilizing" in verdict.summary()
        chain = build_chain(system, CentralRandomizedDistribution())
        row = hitting_summary(chain, chain.mark(spec.legitimate)).row()
        assert row["prob1"] is True
