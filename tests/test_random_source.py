"""Unit tests for repro.random_source."""

import pytest

from repro.errors import ReproError
from repro.random_source import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        assert RandomSource(1).random() != RandomSource(2).random()

    def test_spawn_is_deterministic(self):
        assert (
            RandomSource(3).spawn(9).random()
            == RandomSource(3).spawn(9).random()
        )

    def test_spawn_differs_from_parent(self):
        parent = RandomSource(3)
        child = parent.spawn(1)
        assert parent.seed != child.seed

    def test_spawn_handles_none_seed(self):
        assert RandomSource(None).spawn(5).seed is not None


class TestPrimitives:
    def test_randrange_bounds(self, rng):
        values = {rng.randrange(4) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_randrange_rejects_nonpositive(self, rng):
        with pytest.raises(ReproError):
            rng.randrange(0)

    def test_coin_both_sides(self, rng):
        flips = {rng.coin() for _ in range(100)}
        assert flips == {True, False}

    def test_bernoulli_extremes(self, rng):
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_bad_probability(self, rng):
        with pytest.raises(ReproError):
            rng.bernoulli(1.5)

    def test_choice(self, rng):
        assert rng.choice([42]) == 42
        seen = {rng.choice("abc") for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_choice_empty(self, rng):
        with pytest.raises(ReproError):
            rng.choice([])

    def test_shuffle_permutes(self, rng):
        items = list(range(10))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestSubsets:
    def test_subset_nonempty_and_within(self, rng):
        items = [10, 20, 30]
        for _ in range(100):
            subset = rng.sample_nonempty_subset(items)
            assert subset
            assert set(subset) <= set(items)

    def test_subset_covers_all_seven(self, rng):
        items = [0, 1, 2]
        seen = set()
        for _ in range(500):
            seen.add(tuple(sorted(rng.sample_nonempty_subset(items))))
        assert len(seen) == 7  # all non-empty subsets of a 3-set

    def test_subset_empty_input(self, rng):
        with pytest.raises(ReproError):
            rng.sample_nonempty_subset([])


class TestWeightedIndex:
    def test_degenerate(self, rng):
        assert rng.weighted_index([1.0]) == 0

    def test_proportions(self):
        rng = RandomSource(11)
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index([0.25, 0.75])] += 1
        assert 0.18 < counts[0] / 2000 < 0.32

    def test_rejects_empty(self, rng):
        with pytest.raises(ReproError):
            rng.weighted_index([])

    def test_rejects_zero_total(self, rng):
        with pytest.raises(ReproError):
            rng.weighted_index([0.0, 0.0])
