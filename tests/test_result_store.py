"""The columnar result store: containers, corruption, quarantine.

The campaign tier's crash-resilience rests on three store properties
exercised here:

* **determinism** — a shard file is a pure function of its records and
  metadata (no timestamps, no dict order, no float repr drift), so
  byte-identity across runs is meaningful;
* **validation** — any structural damage (truncation, bit flips, wrong
  magic, inconsistent counts) surfaces as
  :class:`~repro.errors.StoreCorruptionError`, never as silent garbage;
* **self-stabilization** — :meth:`ResultStore.load` converts corruption
  into quarantine-and-regenerate instead of crashing the campaign.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.markov.batch import EnabledCountLegitimacy
from repro.stabilization.faults import FaultPlan
from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.columnar import (
    SHARD_MAGIC,
    SHARD_SCHEMA,
    ResultStore,
    decode_shard,
    encode_shard,
    fault_signature,
    legitimacy_signature,
    read_shard,
    records_from_arrays,
    sampler_signature,
    shard_key,
    system_signature,
    write_shard,
)

META = {"family": "Q1", "params": {"n": 5}, "seed": 17, "trials": 4}


def make_records(count: int = 4, point: int = 0) -> np.ndarray:
    return records_from_arrays(
        point=point,
        trial_offset=0,
        times=np.arange(count, dtype=np.int64) * 3,
        converged=np.ones(count, dtype=bool),
        timed_out=np.zeros(count, dtype=bool),
        hit_terminal=np.zeros(count, dtype=bool),
    )


# ----------------------------------------------------------------------
# records assembly
# ----------------------------------------------------------------------
def test_records_from_arrays_defaults():
    records = make_records(3)
    assert records.dtype == SHARD_SCHEMA
    assert list(records["trial"]) == [0, 1, 2]
    assert list(records["time"]) == [0, 3, 6]
    # Fault-free and round-less shards use the schema sentinels.
    assert all(records["fault_time"] == -1)
    assert all(math.isnan(value) for value in records["rounds"])


def test_records_from_arrays_trial_offset_and_vectors():
    records = records_from_arrays(
        point=2,
        trial_offset=100,
        times=np.array([5, 9], dtype=np.int64),
        converged=np.array([True, False]),
        timed_out=np.array([False, True]),
        hit_terminal=np.array([False, False]),
        fault_times=np.array([4, -1], dtype=np.int64),
        rounds=np.array([1.5, np.nan]),
    )
    assert list(records["point"]) == [2, 2]
    assert list(records["trial"]) == [100, 101]
    assert list(records["fault_time"]) == [4, -1]
    assert records["rounds"][0] == 1.5


# ----------------------------------------------------------------------
# container round trip and determinism
# ----------------------------------------------------------------------
def test_encode_decode_round_trip():
    records = make_records()
    decoded, meta = decode_shard(encode_shard(records, META))
    assert decoded.tobytes() == records.tobytes()
    assert meta == META


def test_encoding_is_deterministic_and_key_order_free():
    records = make_records()
    reordered = {key: META[key] for key in reversed(list(META))}
    assert encode_shard(records, META) == encode_shard(records, reordered)


def test_encode_rejects_wrong_dtype():
    with pytest.raises(StoreError, match="dtype"):
        encode_shard(np.zeros(3, dtype=np.int64), META)


def test_encode_rejects_non_json_metadata():
    with pytest.raises(StoreError, match="JSON"):
        encode_shard(make_records(), {"bad": object()})
    with pytest.raises(StoreError, match="JSON"):
        encode_shard(make_records(), {"bad": float("nan")})


def test_shard_key_is_order_insensitive_and_discriminating():
    assert shard_key(META) == shard_key(
        {key: META[key] for key in reversed(list(META))}
    )
    assert shard_key(META) != shard_key({**META, "seed": 18})


# ----------------------------------------------------------------------
# corruption detection
# ----------------------------------------------------------------------
def test_decode_rejects_truncation_below_header():
    with pytest.raises(StoreCorruptionError, match="truncated"):
        decode_shard(b"RS")


def test_decode_rejects_foreign_magic():
    data = bytearray(encode_shard(make_records(), META))
    data[:8] = b"NOTSHARD"
    with pytest.raises(StoreCorruptionError, match="magic"):
        decode_shard(bytes(data))


@pytest.mark.parametrize("position", ["meta", "payload", "footer"])
def test_decode_rejects_bit_flips_anywhere(position: str):
    data = bytearray(encode_shard(make_records(), META))
    index = {"meta": 20, "payload": len(data) // 2, "footer": len(data) - 1}[
        position
    ]
    data[index] ^= 0x40
    with pytest.raises(StoreCorruptionError, match="checksum"):
        decode_shard(bytes(data))


def test_decode_rejects_truncated_tail():
    data = encode_shard(make_records(), META)
    with pytest.raises(StoreCorruptionError):
        decode_shard(data[:-7])


def test_decode_rejects_trailing_garbage():
    data = encode_shard(make_records(), META)
    with pytest.raises(StoreCorruptionError, match="checksum"):
        decode_shard(data + b"x")


def test_decode_rejects_count_payload_mismatch():
    # A *checksum-valid* container whose record count disagrees with its
    # payload length: tamper the count field, then recompute the footer.
    import hashlib
    import struct

    records = make_records(4)
    data = encode_shard(records, META)
    body = bytearray(data[:-32])
    meta_len = struct.unpack_from("<Q", body, 8)[0]
    count_at = 8 + 8 + meta_len
    struct.pack_into("<Q", body, count_at, 5)
    forged = bytes(body) + hashlib.sha256(bytes(body)).digest()
    with pytest.raises(StoreCorruptionError, match="payload"):
        decode_shard(forged)


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_leaves_no_droppings(tmp_path):
    target = tmp_path / "value.bin"
    atomic_write_bytes(target, b"payload")
    assert target.read_bytes() == b"payload"
    atomic_write_text(tmp_path / "value.txt", "text\n")
    assert (tmp_path / "value.txt").read_text() == "text\n"
    assert not list(tmp_path.glob("*.tmp"))


def test_write_read_shard_files(tmp_path):
    records = make_records()
    path = tmp_path / "one.shard"
    write_shard(path, records, META)
    loaded, meta = read_shard(path)
    assert loaded.tobytes() == records.tobytes()
    assert meta == META
    with pytest.raises(StoreError, match="cannot read"):
        read_shard(tmp_path / "absent.shard")


# ----------------------------------------------------------------------
# the store: content addressing, quarantine, verification
# ----------------------------------------------------------------------
def test_store_write_read_has_keys(tmp_path):
    store = ResultStore(tmp_path)
    key = shard_key(META)
    assert not store.has(key)
    assert store.load(key) is None
    path = store.write(key, make_records(), META)
    assert path == store.path_for(key)
    assert store.has(key)
    assert store.keys() == [key]
    records, meta = store.read(key)
    assert meta == META
    assert len(records) == 4
    with pytest.raises(StoreError, match="no shard"):
        store.read("0" * 64)


def test_store_load_quarantines_corruption(tmp_path):
    store = ResultStore(tmp_path)
    key = shard_key(META)
    store.write(key, make_records(), META)
    damaged = bytearray(store.path_for(key).read_bytes())
    damaged[len(damaged) // 2] ^= 0x01
    store.path_for(key).write_bytes(bytes(damaged))

    assert store.load(key) is None
    assert not store.has(key)
    quarantined = list(store.quarantine_dir.iterdir())
    assert [path.name for path in quarantined] == [f"{key}.0.bad"]

    # A second corrupt incarnation gets the next unique autopsy name.
    store.path_for(key).write_bytes(b"RSHARD01 definitely not a shard")
    assert store.load(key) is None
    names = sorted(path.name for path in store.quarantine_dir.iterdir())
    assert names == [f"{key}.0.bad", f"{key}.1.bad"]

    # Regeneration after quarantine restores normal service.
    store.write(key, make_records(), META)
    assert store.load(key) is not None


def test_store_verify_observes_without_quarantining(tmp_path):
    store = ResultStore(tmp_path)
    good = shard_key({**META, "seed": 1})
    bad = shard_key({**META, "seed": 2})
    store.write(good, make_records(), {**META, "seed": 1})
    store.write(bad, make_records(), {**META, "seed": 2})
    store.path_for(bad).write_bytes(b"garbage")
    ok, corrupt = store.verify()
    assert ok == [good]
    assert corrupt == [bad]
    assert store.path_for(bad).exists()  # left in place for the runner


def test_store_sweep_temp(tmp_path):
    store = ResultStore(tmp_path)
    (store.shards_dir / "interrupted.shard.tmp").write_bytes(b"partial")
    (store.shards_dir / "other.tmp").write_bytes(b"partial")
    assert store.sweep_temp() == 2
    assert store.sweep_temp() == 0


# ----------------------------------------------------------------------
# canonical signatures
# ----------------------------------------------------------------------
def test_system_signature_stable_across_builds():
    from repro.algorithms.token_ring import make_token_ring_system

    one = system_signature(make_token_ring_system(5))
    two = system_signature(make_token_ring_system(5))
    assert one == two
    assert json.dumps(one)  # plain JSON, no live objects
    assert one != system_signature(make_token_ring_system(6))
    assert one["processes"] == 5


def test_sampler_signature_captures_scalar_params():
    from repro.schedulers.samplers import SynchronousSampler

    name, params = sampler_signature(SynchronousSampler())
    assert name == "SynchronousSampler"
    assert isinstance(params, dict)


def test_legitimacy_signature_forms():
    assert legitimacy_signature(EnabledCountLegitimacy(1)) == [
        "enabled-count",
        1,
    ]
    predicate = legitimacy_signature(None, legitimate=os.path.exists)
    assert predicate[0] == "predicate"


def test_fault_signature_forms():
    assert fault_signature(None) is None
    plan = FaultPlan(processes=2, step=None, mode="random", seed=13)
    signature = fault_signature(plan)
    assert signature["processes"] == 2
    assert json.dumps(signature)
    with pytest.raises(StoreError, match="canonicalize"):
        fault_signature(object())
