"""Unit + property tests for scheduler relations and distributions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.schedulers.distributions import (
    BernoulliDistribution,
    CentralRandomizedDistribution,
    DistributedRandomizedDistribution,
    SynchronousDistribution,
    distribution_by_name,
)
from repro.schedulers.relations import (
    BoundedRelation,
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
    relation_by_name,
)

ENABLED_SETS = st.lists(
    st.integers(min_value=0, max_value=11), min_size=1, max_size=6, unique=True
)


class TestCentralRelation:
    def test_singletons(self):
        assert list(CentralRelation().subsets((3, 5))) == [(3,), (5,)]

    def test_allows(self):
        relation = CentralRelation()
        assert relation.allows((1, 2), (2,))
        assert not relation.allows((1, 2), (1, 2))

    def test_max_subsets(self):
        assert CentralRelation().max_subsets(4) == 4


class TestDistributedRelation:
    def test_all_nonempty_subsets(self):
        subsets = set(DistributedRelation().subsets((0, 1)))
        assert subsets == {(0,), (1,), (0, 1)}

    def test_count(self):
        assert DistributedRelation().max_subsets(4) == 15

    def test_budget_guard(self):
        with pytest.raises(SchedulerError):
            list(DistributedRelation(max_enabled=3).subsets(range(4)))

    @settings(max_examples=40, deadline=None)
    @given(ENABLED_SETS)
    def test_every_subset_valid(self, enabled):
        for subset in DistributedRelation().subsets(enabled):
            assert subset
            assert set(subset) <= set(enabled)
            assert list(subset) == sorted(subset)


class TestSynchronousRelation:
    def test_single_choice(self):
        assert list(SynchronousRelation().subsets((2, 0, 1))) == [(0, 1, 2)]

    def test_nothing_for_empty(self):
        assert list(SynchronousRelation().subsets(())) == []


class TestBoundedRelation:
    def test_bound_two(self):
        subsets = set(BoundedRelation(2).subsets((0, 1, 2)))
        assert (0, 1) in subsets
        assert (0, 1, 2) not in subsets
        assert len(subsets) == 6

    def test_bound_validation(self):
        with pytest.raises(SchedulerError):
            BoundedRelation(0)

    def test_bound_one_equals_central(self):
        enabled = (0, 3, 4)
        assert set(BoundedRelation(1).subsets(enabled)) == set(
            CentralRelation().subsets(enabled)
        )


class TestRelationRegistry:
    @pytest.mark.parametrize(
        "name", ["central", "distributed", "synchronous"]
    )
    def test_known(self, name):
        assert relation_by_name(name).name == name

    def test_unknown(self):
        with pytest.raises(SchedulerError):
            relation_by_name("quantum")


class TestDistributions:
    @settings(max_examples=30, deadline=None)
    @given(ENABLED_SETS)
    def test_synchronous_sums_to_one(self, enabled):
        SynchronousDistribution().check(enabled)

    @settings(max_examples=30, deadline=None)
    @given(ENABLED_SETS)
    def test_central_uniform(self, enabled):
        weighted = CentralRandomizedDistribution().weighted_subsets(enabled)
        assert len(weighted) == len(enabled)
        for weight, subset in weighted:
            assert math.isclose(weight, 1.0 / len(enabled))
            assert len(subset) == 1

    @settings(max_examples=30, deadline=None)
    @given(ENABLED_SETS)
    def test_distributed_uniform_nonempty(self, enabled):
        weighted = DistributedRandomizedDistribution().weighted_subsets(
            enabled
        )
        assert len(weighted) == 2 ** len(enabled) - 1
        expected = 1.0 / (2 ** len(enabled) - 1)
        for weight, subset in weighted:
            assert math.isclose(weight, expected)
            assert subset

    def test_empty_enabled_rejected(self):
        for distribution in (
            SynchronousDistribution(),
            CentralRandomizedDistribution(),
            DistributedRandomizedDistribution(),
            BernoulliDistribution(),
        ):
            with pytest.raises(SchedulerError):
                distribution.weighted_subsets(())

    def test_bernoulli_lazy_includes_empty(self):
        weighted = BernoulliDistribution(0.5, include_empty=True)
        subsets = dict(
            (subset, weight)
            for weight, subset in weighted.weighted_subsets((0, 1))
        )
        assert math.isclose(subsets[()], 0.25)
        assert math.isclose(subsets[(0, 1)], 0.25)
        assert math.isclose(sum(subsets.values()), 1.0)

    def test_bernoulli_strict_renormalizes(self):
        weighted = BernoulliDistribution(0.5, include_empty=False)
        entries = weighted.weighted_subsets((0, 1))
        assert all(subset for _, subset in entries)
        assert math.isclose(sum(w for w, _ in entries), 1.0)

    def test_bernoulli_biased_weights(self):
        weighted = BernoulliDistribution(0.25, include_empty=True)
        subsets = dict(
            (subset, weight)
            for weight, subset in weighted.weighted_subsets((0,))
        )
        assert math.isclose(subsets[(0,)], 0.25)
        assert math.isclose(subsets[()], 0.75)

    def test_bernoulli_probability_validation(self):
        with pytest.raises(SchedulerError):
            BernoulliDistribution(0.0)
        with pytest.raises(SchedulerError):
            BernoulliDistribution(1.0)

    def test_distribution_registry(self):
        assert (
            distribution_by_name("central-randomized").name
            == "central-randomized"
        )
        with pytest.raises(SchedulerError):
            distribution_by_name("nope")

    def test_budget_guards(self):
        with pytest.raises(SchedulerError):
            DistributedRandomizedDistribution(max_enabled=2).weighted_subsets(
                (0, 1, 2)
            )
        with pytest.raises(SchedulerError):
            BernoulliDistribution(max_enabled=2).weighted_subsets((0, 1, 2))
