"""Unit tests for scheduler samplers and the lasso fairness predicates."""

import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
    two_token_configuration,
)
from repro.core.trace import Lasso, Step, Trace, lasso_from_trace
from repro.core.system import Move
from repro.errors import SchedulerError
from repro.random_source import RandomSource
from repro.schedulers.fairness import (
    cycle_acting_processes,
    fairness_report,
    is_gouda_fair_lasso,
    is_strongly_fair_lasso,
    is_weakly_fair_lasso,
)
from repro.schedulers.relations import CentralRelation
from repro.schedulers.samplers import (
    BernoulliSampler,
    CentralRandomizedSampler,
    DistributedRandomizedSampler,
    GreedySingletonSampler,
    RoundRobinSampler,
    ScriptedSampler,
    SynchronousSampler,
    sampler_by_name,
)


@pytest.fixture
def rng():
    return RandomSource(9)


class TestSamplers:
    def test_synchronous_returns_all(self, two_process_system, rng):
        chosen = SynchronousSampler().choose(
            two_process_system, ((False,), (False,)), (0, 1), rng
        )
        assert list(chosen) == [0, 1]

    def test_central_singleton(self, two_process_system, rng):
        chosen = CentralRandomizedSampler().choose(
            two_process_system, ((False,), (False,)), (0, 1), rng
        )
        assert len(chosen) == 1

    def test_distributed_nonempty_subset(self, two_process_system, rng):
        for _ in range(50):
            chosen = DistributedRandomizedSampler().choose(
                two_process_system, ((False,), (False,)), (0, 1), rng
            )
            assert chosen
            assert set(chosen) <= {0, 1}

    def test_bernoulli_never_empty(self, two_process_system, rng):
        sampler = BernoulliSampler(0.1)
        for _ in range(50):
            assert sampler.choose(
                two_process_system, ((False,), (False,)), (0, 1), rng
            )

    def test_bernoulli_validation(self):
        with pytest.raises(SchedulerError):
            BernoulliSampler(0.0)

    def test_round_robin_cycles(self, ring5_system, rng):
        sampler = RoundRobinSampler()
        config = next(
            c
            for c in ring5_system.all_configurations()
            if len(ring5_system.enabled_processes(c)) >= 3
        )
        enabled = ring5_system.enabled_processes(config)
        first = sampler.choose(ring5_system, config, enabled, rng)
        second = sampler.choose(ring5_system, config, enabled, rng)
        assert first != second or len(enabled) == 1

    def test_scripted_replay(self, two_process_system, rng):
        sampler = ScriptedSampler([(0,), (1,)])
        assert sampler.remaining == 2
        assert list(
            sampler.choose(
                two_process_system, ((False,), (False,)), (0, 1), rng
            )
        ) == [0]
        assert sampler.remaining == 1

    def test_scripted_exhaustion(self, two_process_system, rng):
        sampler = ScriptedSampler([])
        with pytest.raises(SchedulerError):
            sampler.choose(
                two_process_system, ((False,), (False,)), (0, 1), rng
            )

    def test_scripted_disabled_process(self, two_process_system, rng):
        sampler = ScriptedSampler([(1,)])
        with pytest.raises(SchedulerError):
            sampler.choose(
                two_process_system, ((True,), (False,)), (0,), rng
            )

    def test_greedy_singleton(self, two_process_system, rng):
        sampler = GreedySingletonSampler(
            lambda system, config, p: float(p)
        )
        chosen = sampler.choose(
            two_process_system, ((False,), (False,)), (0, 1), rng
        )
        assert list(chosen) == [1]

    def test_registry(self):
        assert sampler_by_name("round-robin").name == "round-robin"
        with pytest.raises(SchedulerError):
            sampler_by_name("fancy")


def _alternating_lasso(system):
    """Two tokens moved alternately until the configuration repeats."""
    configuration = two_token_configuration(system, 0, 3)
    trace = Trace.starting_at(configuration)
    seen = {configuration: 0}
    mover_is_first = True
    from repro.algorithms.token_ring import token_holders

    while True:
        holders = token_holders(system, configuration)
        mover = min(holders) if mover_is_first else max(holders)
        mover_is_first = not mover_is_first
        branch = next(
            iter(system.subset_branches(configuration, (mover,)))
        )
        trace.append(Step(branch.moves), branch.target)
        configuration = branch.target
        if configuration in seen:
            return lasso_from_trace(trace, seen[configuration])
        seen[configuration] = trace.length


class TestFairnessOnTheoremSixWitness:
    @pytest.fixture(scope="class")
    def witness(self):
        system = make_token_ring_system(6)
        return system, _alternating_lasso(system)

    def test_strongly_fair(self, witness):
        system, lasso = witness
        assert is_strongly_fair_lasso(system, lasso)

    def test_weakly_fair(self, witness):
        system, lasso = witness
        assert is_weakly_fair_lasso(system, lasso)

    def test_not_gouda_fair(self, witness):
        system, lasso = witness
        assert not is_gouda_fair_lasso(system, lasso, CentralRelation())

    def test_never_legitimate(self, witness):
        system, lasso = witness
        spec = TokenCirculationSpec()
        assert all(
            not spec.legitimate(system, configuration)
            for configuration in lasso.cycle_configurations
        )

    def test_report_consistency(self, witness):
        system, lasso = witness
        report = fairness_report(system, lasso, CentralRelation())
        assert report.strongly_fair and not report.gouda_fair
        assert report.starved == frozenset()
        assert "strong=True" in report.summary()


class TestFairnessOnStarvingLasso:
    """Algorithm 3 driven by a central scheduler that only ever picks p0.

    The cycle (F,F) → (T,F) → (F,F) starves p1: it is enabled at (F,F)
    (so enabled infinitely often → strong fairness violated) but disabled
    at (T,F) (not *continuously* enabled → weak fairness still holds).
    This separates the two classical fairness notions on one example.
    """

    @pytest.fixture(scope="class")
    def starving(self, ):
        from repro.algorithms.two_process import make_two_process_system

        system = make_two_process_system()
        configuration = ((False,), (False,))
        trace = Trace.starting_at(configuration)
        seen = {configuration: 0}
        while True:
            branch = next(
                iter(system.subset_branches(configuration, (0,)))
            )
            trace.append(Step(branch.moves), branch.target)
            configuration = branch.target
            if configuration in seen:
                return system, lasso_from_trace(trace, seen[configuration])
            seen[configuration] = trace.length

    def test_cycle_shape(self, starving):
        _, lasso = starving
        assert lasso.cycle_length == 2

    def test_not_strongly_fair(self, starving):
        system, lasso = starving
        assert not is_strongly_fair_lasso(system, lasso)
        report = fairness_report(system, lasso, CentralRelation())
        assert 1 in report.starved

    def test_weakly_fair_nevertheless(self, starving):
        # p1 is not continuously enabled (disabled at (T,F)), so weak
        # fairness is satisfied even though p1 never acts.
        system, lasso = starving
        assert is_weakly_fair_lasso(system, lasso)

    def test_not_gouda_fair(self, starving):
        system, lasso = starving
        assert not is_gouda_fair_lasso(system, lasso, CentralRelation())

    def test_acting_processes_exclude_starved(self, starving):
        system, lasso = starving
        assert 1 not in cycle_acting_processes(lasso)
