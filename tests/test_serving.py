"""Serving-tier tests: warm caches, admission fusion, bit-identity.

The load-bearing contract is the **oracle**: whatever the dispatcher
fuses, every job's response rows must be bit-identical to a fresh
sequential ``SweepRunner().run()`` over that job's recorded batch
composition (``batch_payloads``) — fusion buys throughput, never
different numbers.  The concurrency tests here hammer that contract
with multi-tenant submissions; the HTTP tests assert it end-to-end
through JSON (floats round-trip exactly at ``repr`` precision).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServingError
from repro.markov.sweep_engine import SweepRunner
from repro.serving import (
    MAX_POINTS_PER_REQUEST,
    ServiceConfig,
    SignatureLRU,
    SweepService,
    make_server,
    resolve_point,
    resolve_points,
)
from repro.serving.jobs import result_payload


def oracle_rows(batch_payloads, **runner_kwargs):
    """The sequential oracle: one fresh runner over the recorded batch."""
    specs = resolve_points({"points": list(batch_payloads)})
    results = SweepRunner(**runner_kwargs).run(specs)
    rows = [result_payload(result) for result in results]
    for row, spec in zip(rows, specs):
        row["label"] = spec.label
    return json.loads(json.dumps(rows))


def assert_job_matches_oracle(snapshot, **runner_kwargs):
    """Every row of one job equals the oracle row with the same label."""
    oracle = {
        row["label"]: row
        for row in oracle_rows(snapshot["batch_payloads"], **runner_kwargs)
    }
    assert snapshot["status"] == "done"
    for row in json.loads(json.dumps(snapshot["results"])):
        assert row == oracle[row["label"]]


class TestSignatureLRU:
    def test_build_once_then_hit(self):
        cache = SignatureLRU("test", maxsize=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 1

    def test_eviction_is_lru(self):
        cache = SignatureLRU("test", maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_maxsize_validation_and_unbounded(self):
        with pytest.raises(ValueError, match="maxsize"):
            SignatureLRU("bad", maxsize=0)
        unbounded = SignatureLRU("all", maxsize=None)
        for key in range(100):
            unbounded.get_or_build(key, lambda: key)
        assert len(unbounded) == 100
        assert unbounded.evictions == 0

    def test_concurrent_raced_builds_share_one_value(self):
        cache = SignatureLRU("race", maxsize=4)
        built, seen = [], []
        barrier = threading.Barrier(8)

        def tenant():
            barrier.wait()
            seen.append(
                cache.get_or_build(
                    "hot", lambda: built.append(object()) or built[0]
                )
            )

        threads = [threading.Thread(target=tenant) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(built) == 1
        assert all(value is built[0] for value in seen)


class TestResolver:
    def test_point_resolves_with_defaults(self):
        spec = resolve_point({"family": "Q1", "n": 8, "seed": 7})
        assert spec.trials == 100
        assert spec.max_steps == 100_000
        assert spec.label == "Q1-n8-seed7"
        assert spec.system.num_processes > 0

    def test_fault_family_carries_plan(self):
        spec = resolve_point({"family": "FT1", "n": 5, "seed": 1})
        assert spec.fault is not None

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"family": "nope", "n": 5, "seed": 1}, "unknown family"),
            ({"family": "Q1", "n": 5}, "missing required field 'seed'"),
            ({"family": "Q1", "n": True, "seed": 1}, "must be an integer"),
            ({"family": "Q1", "n": 999, "seed": 1}, "must be in"),
            ({"family": "Q1", "n": 5, "seed": 1, "x": 2}, "unknown point"),
            ({"family": "Q1", "n": 5, "seed": 1, "label": 3}, "label"),
        ],
    )
    def test_bad_points_rejected(self, payload, message):
        with pytest.raises(ServingError, match=message):
            resolve_point(payload)

    def test_submission_shape_enforced(self):
        with pytest.raises(ServingError, match="non-empty 'points'"):
            resolve_points({"points": []})
        with pytest.raises(ServingError, match="non-empty 'points'"):
            resolve_points({})
        too_many = [
            {"family": "Q1", "n": 5, "seed": seed}
            for seed in range(MAX_POINTS_PER_REQUEST + 1)
        ]
        with pytest.raises(ServingError, match="too many points"):
            resolve_points({"points": too_many})


@pytest.fixture
def service(request):
    config = getattr(request, "param", None) or ServiceConfig(
        admission_window=0.01
    )
    service = SweepService(config)
    yield service
    service.close()


class TestDispatcher:
    def test_single_request_executes(self, service):
        snapshot = service.run_sweep(
            {"points": [{"family": "Q1", "n": 5, "seed": 3, "trials": 20}]}
        )
        assert snapshot["status"] == "done"
        assert snapshot["batch"] == 1
        assert len(snapshot["results"]) == 1
        assert_job_matches_oracle(snapshot)

    def test_job_lookup_and_index(self, service):
        done = service.run_sweep(
            {"points": [{"family": "Q1", "n": 4, "seed": 1, "trials": 10}]}
        )
        assert service.job_snapshot(done["job"])["status"] == "done"
        assert service.job_index() == [
            {"job": done["job"], "status": "done", "points": 1}
        ]
        with pytest.raises(ServingError, match="unknown job"):
            service.job_snapshot("job-999")

    def test_execution_error_marks_job_not_server(self, service):
        original = service.runner.run
        service.runner.run = lambda specs: (_ for _ in ()).throw(
            RuntimeError("injected")
        )
        try:
            job = service.submit_sweep(
                {"points": [{"family": "Q1", "n": 4, "seed": 5}]}
            )
            assert job.done.wait(10)
            assert job.status == "error"
            assert "injected" in job.error
        finally:
            service.runner.run = original
        # The dispatcher thread survived and serves the next batch.
        snapshot = service.run_sweep(
            {"points": [{"family": "Q1", "n": 4, "seed": 6, "trials": 10}]}
        )
        assert snapshot["status"] == "done"

    def test_spurious_wake_executes_nothing(self, service):
        service.dispatcher._wake.set()
        snapshot = service.run_sweep(
            {"points": [{"family": "Q1", "n": 4, "seed": 2, "trials": 10}]}
        )
        assert snapshot["status"] == "done"
        assert service.dispatcher.batches_run == 1

    def test_window_validation(self):
        with pytest.raises(ServingError, match="admission window"):
            SweepService(ServiceConfig(admission_window=-1.0))


class TestMultiTenantFusion:
    """Satellite: N concurrent tenants, fused rows bit-identical to the
    sequential oracle — fusable, mixed-family, and fusion-illegal."""

    WINDOW = 0.4

    def _submit_concurrently(self, service, submissions):
        barrier = threading.Barrier(len(submissions))
        snapshots = [None] * len(submissions)
        errors = []

        def tenant(index, points):
            try:
                barrier.wait()
                snapshots[index] = service.run_sweep(
                    {"points": points}, timeout=240.0
                )
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=tenant, args=(index, points))
            for index, points in enumerate(submissions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return snapshots

    def test_eight_tenants_fuse_and_match_oracle(self):
        service = SweepService(ServiceConfig(admission_window=self.WINDOW))
        try:
            submissions = [
                [
                    {
                        "family": "Q1",
                        "n": 6,
                        "trials": 30,
                        "seed": 100 + tenant,
                        "label": f"tenant{tenant}-a",
                    },
                    {
                        "family": "Q1",
                        "n": 6,
                        "trials": 20,
                        "seed": 200 + tenant,
                        "label": f"tenant{tenant}-b",
                    },
                ]
                for tenant in range(8)
            ]
            snapshots = self._submit_concurrently(service, submissions)
            # The barrier start + window admits everyone into one batch,
            # whose fused matrix covers all 16 points.
            batches = {snapshot["batch"] for snapshot in snapshots}
            assert len(batches) == 1
            assert all(
                entry["engine"] == "fused"
                for snapshot in snapshots
                for entry in snapshot["plan"]
            )
            for snapshot in snapshots:
                assert_job_matches_oracle(snapshot)
        finally:
            service.close()

    def test_mixed_families_fuse_per_system_and_match_oracle(self):
        service = SweepService(ServiceConfig(admission_window=self.WINDOW))
        try:
            submissions = [
                [{"family": "Q1", "n": 5, "trials": 25, "seed": 11}],
                [{"family": "Q3", "n": 5, "trials": 25, "seed": 12}],
                [{"family": "Q1", "n": 5, "trials": 25, "seed": 13}],
                [{"family": "FT1", "n": 5, "trials": 25, "seed": 14}],
            ]
            snapshots = self._submit_concurrently(service, submissions)
            assert len({snapshot["batch"] for snapshot in snapshots}) == 1
            for snapshot in snapshots:
                assert_job_matches_oracle(snapshot)
            # The two Q1 tenants landed in one fused group.
            q1_plans = [
                entry
                for snapshot in (snapshots[0], snapshots[2])
                for entry in snapshot["plan"]
            ]
            assert all(entry["engine"] == "fused" for entry in q1_plans)
            assert q1_plans[0]["fused_rows"] == 50
        finally:
            service.close()

    def test_fusion_illegal_fallback_still_matches_oracle(self):
        """A starved table budget outlaws fusion; the dispatcher falls
        back to per-request scalar execution with identical rows."""
        service = SweepService(
            ServiceConfig(admission_window=self.WINDOW, table_budget=1)
        )
        try:
            submissions = [
                [
                    {
                        "family": "Q1",
                        "n": 4,
                        "trials": 15,
                        "seed": 300 + tenant,
                    }
                ]
                for tenant in range(4)
            ]
            snapshots = self._submit_concurrently(service, submissions)
            assert all(
                entry["engine"] == "scalar"
                for snapshot in snapshots
                for entry in snapshot["plan"]
            )
            for snapshot in snapshots:
                assert_job_matches_oracle(snapshot, table_budget=1)
        finally:
            service.close()


class TestWarmCaches:
    def test_sweep_batches_share_compilations(self, service):
        point = {"family": "Q1", "n": 5, "trials": 10}
        service.run_sweep({"points": [dict(point, seed=1)]})
        info = service.runner.cache_info()
        service.run_sweep({"points": [dict(point, seed=2)]})
        assert service.runner.cache_info()["systems"] == info["systems"]
        assert service.dispatcher.stats()["batches"] == 2

    def test_verdict_cached_and_correct(self, service):
        verdict = service.verdict("Q3", 4)
        assert verdict["probabilistically_self_stabilizing"] is True
        assert service.verdict("Q3", 4) == verdict
        stats = {
            cache["name"]: cache
            for cache in service.cache_stats()["lru"]
        }
        assert stats["verdicts"]["hits"] == 1
        assert stats["chains"]["misses"] == 1
        from repro.stabilization.probabilistic import (
            classify_probabilistic,
        )
        from repro.serving.resolver import verdict_parts

        parts = verdict_parts("Q3", 4)
        direct = classify_probabilistic(
            parts["system"], parts["specification"], parts["distribution"]
        )
        assert verdict["min_absorption"] == direct.min_absorption
        assert verdict["worst_expected_steps"] == direct.worst_expected_steps

    def test_bias_sweep_reuses_parametric_structure(self, service):
        body = {
            "family": "herman-random-bit",
            "n": 5,
            "biases": [0.3, 0.5, 0.7],
        }
        first = service.bias_sweep(body)
        assert first["parameters"] == ["p"]
        assert len(first["values"]) == 3
        assert service.bias_sweep(body) == first
        stats = {
            cache["name"]: cache
            for cache in service.cache_stats()["lru"]
        }
        assert stats["parametric"]["hits"] == 1
        assert stats["parametric"]["misses"] == 1

    @pytest.mark.parametrize(
        "body, message",
        [
            ({"family": "herman-random-bit", "n": 5}, "biases"),
            (
                {"family": "herman-random-bit", "n": 5, "biases": [0.0]},
                "inside",
            ),
            (
                {"family": "herman-random-bit", "n": 4, "biases": [0.5]},
                "odd",
            ),
            (
                {"family": "nope", "n": 5, "biases": [0.5]},
                "unknown parametric family",
            ),
            (
                {
                    "family": "herman-random-bit",
                    "n": 5,
                    "biases": [0.5],
                    "objective": "p99",
                },
                "objective",
            ),
        ],
    )
    def test_bias_sweep_validation(self, service, body, message):
        with pytest.raises(ServingError, match=message):
            service.bias_sweep(body)

    def test_experiment_cached_by_overrides(self, service):
        result = service.experiment(
            "THM2", {"ring_sizes": [3, 4]}
        )
        assert result["passed"] is True
        assert service.experiment("THM2", {"ring_sizes": [3, 4]}) == result
        other = service.experiment("THM2", {"ring_sizes": [3]})
        assert other != result
        stats = {
            cache["name"]: cache
            for cache in service.cache_stats()["lru"]
        }
        assert stats["experiments"]["hits"] == 1
        assert stats["experiments"]["misses"] == 2
        with pytest.raises(ServingError, match="unknown experiment"):
            service.experiment("NOPE")
        with pytest.raises(ServingError, match="unknown parameters"):
            service.experiment("THM2", {"bogus": 1})

    def test_report_cached_by_store_fingerprint(self, service, tmp_path):
        from repro.store.columnar import ResultStore, records_from_arrays

        store = ResultStore(tmp_path)
        records = records_from_arrays(
            point=0,
            trial_offset=0,
            times=np.array([3.0, 5.0]),
            converged=np.array([True, True]),
            timed_out=np.array([False, False]),
            hit_terminal=np.array([False, False]),
        )
        store.write("k1", records, {"family": "Q1", "params": {"n": 5}})
        first = service.report(str(tmp_path))
        assert first["rows"] == [
            {
                "family": "Q1",
                "N": 5,
                "trials": 2,
                "converged": 2,
                "timed_out": 0,
                "mean_time": 4.0,
                "max_time": 5,
            }
        ]
        assert service.report(str(tmp_path)) == first
        # Adding a shard changes the fingerprint: fresh aggregation.
        store.write(
            "k2", records, {"family": "Q1", "params": {"n": 7}}
        )
        second = service.report(str(tmp_path))
        assert len(second["rows"]) == 2
        assert second["fingerprint"] != first["fingerprint"]
        with pytest.raises(ServingError, match="no campaign store"):
            service.report(str(tmp_path / "missing"))


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0, config=ServiceConfig(admission_window=0.01))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def http_get(base, path):
    with urllib.request.urlopen(base + path, timeout=120) as response:
        return response.status, json.loads(response.read())


def http_post(base, path, body):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=240) as response:
        return response.status, json.loads(response.read())


def http_error(base, path, body=None):
    try:
        if body is None:
            http_get(base, path)
        else:
            http_post(base, path, body)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())["error"]
    raise AssertionError("expected an HTTP error")


class TestHTTP:
    def test_health_and_index(self, server):
        assert http_get(server, "/api/health") == (200, {"status": "ok"})
        with urllib.request.urlopen(server + "/", timeout=30) as response:
            assert response.status == 200
            assert b"sweep service" in response.read()

    def test_sweep_wait_roundtrip_is_bit_identical(self, server):
        status, snapshot = http_post(
            server,
            "/api/sweep",
            {
                "points": [
                    {"family": "Q1", "n": 6, "trials": 25, "seed": 41},
                    {"family": "Q1", "n": 6, "trials": 25, "seed": 42},
                ],
                "wait": True,
            },
        )
        assert status == 200
        assert_job_matches_oracle(snapshot)

    def test_sweep_async_then_poll(self, server):
        status, queued = http_post(
            server,
            "/api/sweep",
            {"points": [{"family": "Q1", "n": 5, "trials": 10, "seed": 4}]},
        )
        assert status == 202
        job_id = queued["job"]
        for _ in range(200):
            status, snapshot = http_get(server, f"/api/jobs/{job_id}")
            if snapshot["status"] in ("done", "error"):
                break
            threading.Event().wait(0.05)
        assert snapshot["status"] == "done"
        assert_job_matches_oracle(snapshot)
        status, index = http_get(server, "/api/jobs")
        assert any(entry["job"] == job_id for entry in index)

    def test_verdict_and_caches_endpoints(self, server):
        status, verdict = http_get(server, "/api/verdict?family=Q3&n=4")
        assert status == 200
        assert verdict["probabilistically_self_stabilizing"] is True
        http_get(server, "/api/verdict?family=Q3&n=4")
        status, caches = http_get(server, "/api/caches")
        assert status == 200
        stats = {cache["name"]: cache for cache in caches["lru"]}
        assert stats["verdicts"]["hits"] >= 1

    def test_bias_sweep_endpoint(self, server):
        status, body = http_post(
            server,
            "/api/bias-sweep",
            {"family": "herman-random-bit", "n": 5, "biases": [0.5]},
        )
        assert status == 200
        assert body["values"][0] > 0

    def test_client_errors(self, server):
        assert http_error(server, "/api/nope")[0] == 404
        assert http_error(server, "/api/jobs/job-999")[0] == 404
        code, message = http_error(
            server,
            "/api/sweep",
            {"points": [{"family": "bogus", "n": 5, "seed": 1}]},
        )
        assert code == 400 and "unknown family" in message
        assert http_error(server, "/api/verdict?family=Q1")[0] == 400
        code, message = http_error(
            server, "/api/sweep", {"points": "nope"}
        )
        assert code == 400
