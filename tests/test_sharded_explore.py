"""Sharded exploration is bit-for-bit identical to the sequential oracle.

The contract (see ``docs/architecture.md``): for every shard count,
``StateSpace.explore`` must produce the *same* canonical state space —
configurations, interned ids, edge lists (order included), enabled
tuples — and therefore identical downstream verdicts, on every topology
family the registry uses (rings, trees/chains, stars) and for
deterministic as well as probabilistic systems.
"""

from __future__ import annotations

import pytest

from repro.algorithms.leader_tree import TreeLeaderSpec, make_leader_tree_system
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import make_two_process_system
from repro.errors import StateSpaceError
from repro.graphs.generators import figure3_chain, star
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization import (
    StateSpace,
    classify,
    convergence_profile,
    get_default_shards,
    resolve_shards,
    set_default_shards,
)
from repro.transformer.coin_toss import make_transformed_system


def assert_identical(space_a: StateSpace, space_b: StateSpace) -> None:
    """Full structural equality of two explored spaces."""
    assert space_a.configurations == space_b.configurations
    assert space_a.index == space_b.index
    assert space_a.edges == space_b.edges
    assert space_a.enabled == space_b.enabled


def explore_pair(system, relation, shards, **kwargs):
    oracle = StateSpace.explore(system, relation, shards=1, **kwargs)
    sharded = StateSpace.explore(system, relation, shards=shards, **kwargs)
    return oracle, sharded


# ----------------------------------------------------------------------
# ring / tree / star topologies, all relations
# ----------------------------------------------------------------------
TOPOLOGY_CASES = [
    pytest.param(lambda: make_token_ring_system(5), id="ring5-token"),
    pytest.param(lambda: make_token_ring_system(6), id="ring6-token"),
    pytest.param(
        lambda: make_leader_tree_system(figure3_chain()), id="chain4-leader"
    ),
    pytest.param(lambda: make_leader_tree_system(star(3)), id="star3-leader"),
]

RELATIONS = [
    pytest.param(CentralRelation, id="central"),
    pytest.param(DistributedRelation, id="distributed"),
    pytest.param(SynchronousRelation, id="synchronous"),
]


@pytest.mark.parametrize("make_system", TOPOLOGY_CASES)
@pytest.mark.parametrize("make_relation", RELATIONS)
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_identical_across_topologies(
    make_system, make_relation, shards
):
    oracle, sharded = explore_pair(
        make_system(), make_relation(), shards=shards
    )
    assert_identical(oracle, sharded)


def test_sharded_identical_probabilistic_two_process():
    """Multi-outcome (probabilistic) actions take the scalar replay path."""
    system = make_two_process_system()
    for relation in (
        CentralRelation(),
        DistributedRelation(),
        SynchronousRelation(),
    ):
        oracle, sharded = explore_pair(system, relation, shards=3)
        assert_identical(oracle, sharded)


def test_sharded_identical_transformed_ring():
    """The coin-toss transformer mixes deterministic and coin actions."""
    system = make_transformed_system(make_token_ring_system(5))
    for relation in (CentralRelation(), SynchronousRelation()):
        oracle, sharded = explore_pair(system, relation, shards=4)
        assert_identical(oracle, sharded)


def test_sharded_identical_action_mode_first():
    oracle, sharded = explore_pair(
        make_two_process_system(),
        SynchronousRelation(),
        shards=2,
        action_mode="first",
    )
    assert_identical(oracle, sharded)


def test_sharded_rejects_unknown_action_mode():
    """Sharding must not relax the sequential path's validation."""
    from repro.errors import ModelError

    with pytest.raises(ModelError):
        StateSpace.explore(
            make_token_ring_system(5),
            CentralRelation(),
            action_mode="bogus",
            shards=2,
        )


# ----------------------------------------------------------------------
# reachable-fragment (explicit initial set) mode
# ----------------------------------------------------------------------
def test_sharded_identical_restricted_initial():
    system = make_token_ring_system(6)
    seeds = [next(system.all_configurations())]
    oracle = StateSpace.explore(
        system, CentralRelation(), initial=seeds, shards=1
    )
    sharded = StateSpace.explore(
        system, CentralRelation(), initial=seeds, shards=4
    )
    assert_identical(oracle, sharded)
    # The fragment really is a fragment (regression guard: the sharded
    # path must not silently explore the full space).
    assert oracle.num_configurations < system.num_configurations()


def test_sharded_restricted_worker_pool_path(monkeypatch):
    """Force the frontier-mode pool dispatch (levels > threshold).

    The default ``MIN_FRONTIER_FOR_WORKERS`` keeps small test frontiers
    in-process; shrinking it makes every BFS level round-trip through
    real worker processes, covering the chunking/pickling/merge path.
    """
    from repro.stabilization import sharding

    monkeypatch.setattr(sharding, "MIN_FRONTIER_FOR_WORKERS", 2)
    system = make_token_ring_system(6)
    seeds = [next(system.all_configurations())]
    for relation in (CentralRelation(), DistributedRelation()):
        oracle = StateSpace.explore(
            system, relation, initial=seeds, shards=1
        )
        sharded = StateSpace.explore(
            system, relation, initial=seeds, shards=3
        )
        assert_identical(oracle, sharded)


def test_sharded_restricted_budget_enforced():
    system = make_token_ring_system(6)
    seeds = [next(system.all_configurations())]
    with pytest.raises(StateSpaceError):
        StateSpace.explore(
            system,
            CentralRelation(),
            initial=seeds,
            max_configurations=10,
            shards=4,
        )


def test_sharded_full_budget_enforced():
    with pytest.raises(StateSpaceError):
        StateSpace.explore(
            make_token_ring_system(6),
            CentralRelation(),
            max_configurations=100,
            shards=4,
        )


# ----------------------------------------------------------------------
# downstream analyses see identical inputs → identical verdicts
# ----------------------------------------------------------------------
def test_sharded_identical_downstream_verdicts():
    cases = [
        (make_token_ring_system(6), TokenCirculationSpec(), CentralRelation()),
        (
            make_leader_tree_system(star(3)),
            TreeLeaderSpec(),
            DistributedRelation(),
        ),
        (
            make_leader_tree_system(figure3_chain()),
            TreeLeaderSpec(),
            SynchronousRelation(),
        ),
    ]
    for system, spec, relation in cases:
        oracle, sharded = explore_pair(system, relation, shards=4)
        mask_oracle = oracle.legitimate_mask(spec.legitimate)
        mask_sharded = sharded.legitimate_mask(spec.legitimate)
        assert mask_oracle == mask_sharded
        verdict_oracle = classify(system, spec, relation, space=oracle)
        verdict_sharded = classify(system, spec, relation, space=sharded)
        assert verdict_oracle == verdict_sharded
        assert convergence_profile(
            oracle, mask_oracle
        ) == convergence_profile(sharded, mask_sharded)


# ----------------------------------------------------------------------
# shard-count plumbing
# ----------------------------------------------------------------------
def test_resolve_shards_values():
    assert resolve_shards(1) == 1
    assert resolve_shards(7) == 7
    assert resolve_shards("auto") >= 1
    assert resolve_shards(None) == get_default_shards()
    with pytest.raises(StateSpaceError):
        resolve_shards(0)
    with pytest.raises(StateSpaceError):
        resolve_shards(-2)
    with pytest.raises(StateSpaceError):
        resolve_shards("many")


def test_default_shards_round_trip():
    original = get_default_shards()
    try:
        assert set_default_shards(3) == 3
        assert get_default_shards() == 3
        system = make_token_ring_system(5)
        implicit = StateSpace.explore(system, CentralRelation())
        explicit = StateSpace.explore(system, CentralRelation(), shards=1)
        assert_identical(implicit, explicit)
    finally:
        set_default_shards(original)


def test_shards_auto_explores():
    system = make_token_ring_system(5)
    oracle = StateSpace.explore(system, CentralRelation(), shards=1)
    auto = StateSpace.explore(system, CentralRelation(), shards="auto")
    assert_identical(oracle, auto)


def test_use_kernel_false_still_oracle():
    """The reference-path escape hatch ignores sharding entirely."""
    system = make_token_ring_system(5)
    reference = StateSpace.explore(
        system, CentralRelation(), use_kernel=False, shards=4
    )
    oracle = StateSpace.explore(system, CentralRelation(), shards=1)
    assert_identical(reference, oracle)


# ----------------------------------------------------------------------
# pool hardening: worker death, hangs, and the in-process fallback
# ----------------------------------------------------------------------
def _raise_in_worker(chunk):
    raise ValueError("injected worker failure")


def _hang_in_worker(chunk):
    import time

    time.sleep(60)


def _die_in_worker(chunk):
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _make_supervised_pool(task, fallback):
    from repro.core.encoding import compile_tables
    from repro.core.kernel import TransitionKernel
    from repro.stabilization import sharding

    tables = compile_tables(TransitionKernel(make_token_ring_system(4)))
    return sharding._SupervisedPool(
        2, tables, CentralRelation(), "all", task, fallback
    )


def test_supervised_pool_retries_once_then_falls_back():
    calls: list[list] = []

    def fallback(chunks):
        calls.append(list(chunks))
        return ["fallback"] * len(chunks)

    pool = _make_supervised_pool(_raise_in_worker, fallback)
    try:
        with pytest.warns(RuntimeWarning) as record:
            assert pool.map([1, 2]) == ["fallback", "fallback"]
        messages = [str(warning.message) for warning in record]
        assert any("retrying the batch" in message for message in messages)
        assert any("falling back" in message for message in messages)
        assert pool.broken
        # Once written off, every later batch skips straight to the
        # in-process fallback — no fresh pools, no fresh warnings.
        assert pool.map([3]) == ["fallback"]
        assert calls == [[1, 2], [3]]
    finally:
        pool.close()


@pytest.mark.parametrize(
    "task", [_hang_in_worker, _die_in_worker], ids=["hung", "sigkilled"]
)
def test_supervised_pool_survives_lost_tasks(task, monkeypatch):
    """A killed or hung worker loses its task; the wall-clock budget on
    ``map_async(...).get`` turns that into a supervisable failure
    instead of the infinite wait a bare ``Pool.map`` would give."""
    from repro.stabilization import sharding

    monkeypatch.setattr(sharding, "POOL_TASK_TIMEOUT", 0.2)
    pool = _make_supervised_pool(task, lambda chunks: list(chunks))
    try:
        with pytest.warns(RuntimeWarning) as record:
            assert pool.map([1, 2]) == [1, 2]
        assert any(
            "falling back" in str(warning.message) for warning in record
        )
        assert pool.broken
    finally:
        pool.close()


def test_exploration_result_survives_broken_pool(monkeypatch):
    """End to end: with the pool timing out every batch, sharded
    exploration degrades to in-process expansion and still produces the
    oracle's exact state space."""
    from repro.stabilization import sharding

    monkeypatch.setattr(sharding, "POOL_TASK_TIMEOUT", 0.0001)
    system = make_token_ring_system(9)  # 512 configs: takes the pool path
    oracle = StateSpace.explore(system, CentralRelation(), shards=1)
    with pytest.warns(RuntimeWarning) as record:
        survived = StateSpace.explore(system, CentralRelation(), shards=2)
    assert any(
        "falling back" in str(warning.message) for warning in record
    )
    assert_identical(oracle, survived)
