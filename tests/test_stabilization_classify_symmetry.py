"""Unit tests for classification verdicts and the symmetry engine."""

import pytest

from repro.algorithms.leader_tree import (
    LeaderTreeAlgorithm,
    TreeLeaderSpec,
)
from repro.algorithms.token_ring import TokenCirculationSpec
from repro.algorithms.two_process import BothTrueSpec
from repro.core.system import System
from repro.core.topology import Topology
from repro.errors import ModelError, StateSpaceError
from repro.graphs.generators import figure3_chain, path, ring
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization.classify import classify
from repro.stabilization.specification import PredicateSpecification
from repro.stabilization.statespace import StateSpace
from repro.stabilization.symmetry import (
    check_symmetric_class_closed,
    is_equivariant_synchronous_step,
    mirror_of_path,
    symmetric_configurations,
    transport_configuration,
)

SYMMETRIC_PORTS = ((1,), (0, 2), (3, 1), (2,))


class TestClassify:
    def test_token_ring_weak_not_self(self, ring5_system):
        verdict = classify(
            ring5_system, TokenCirculationSpec(), DistributedRelation()
        )
        assert verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing
        assert "weak-stabilizing" in verdict.stabilization_class
        assert "weak-stabilizing" in verdict.summary()

    def test_two_process_synchronous_self(self, two_process_system):
        verdict = classify(
            two_process_system, BothTrueSpec(), SynchronousRelation()
        )
        assert verdict.is_self_stabilizing
        assert verdict.stabilization_class == "self-stabilizing"

    def test_two_process_central_not_stabilizing(self, two_process_system):
        verdict = classify(
            two_process_system, BothTrueSpec(), CentralRelation()
        )
        assert not verdict.is_weak_stabilizing
        assert verdict.stabilization_class == "not stabilizing"

    def test_reuse_explored_space(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        verdict = classify(
            two_process_system,
            BothTrueSpec(),
            CentralRelation(),
            space=space,
        )
        assert verdict.num_configurations == 4

    def test_space_system_mismatch_rejected(
        self, two_process_system, ring5_system
    ):
        space = StateSpace.explore(ring5_system, CentralRelation())
        with pytest.raises(StateSpaceError):
            classify(
                two_process_system,
                BothTrueSpec(),
                CentralRelation(),
                space=space,
            )

    def test_empty_legitimate_set_not_stabilizing(self, two_process_system):
        spec = PredicateSpecification(
            "impossible", lambda system, config: False
        )
        verdict = classify(two_process_system, spec, CentralRelation())
        assert verdict.num_legitimate == 0
        assert not verdict.is_weak_stabilizing
        assert not verdict.is_self_stabilizing

    def test_behavior_violations_block_verdict(self, ring5_system):
        class PickySpec(TokenCirculationSpec):
            def validate_behavior(self, system, space, legitimate_ids):
                return ["always unhappy"]

        verdict = classify(ring5_system, PickySpec(), DistributedRelation())
        assert verdict.behavior_violations == ("always unhappy",)
        assert not verdict.is_weak_stabilizing


@pytest.fixture
def symmetric_system():
    return System(
        LeaderTreeAlgorithm(),
        Topology(figure3_chain(), neighbor_order=SYMMETRIC_PORTS),
    )


class TestSymmetry:
    def test_transport_involution(self, symmetric_system):
        sigma = mirror_of_path(4)
        for configuration in symmetric_system.all_configurations():
            double = transport_configuration(
                symmetric_system,
                transport_configuration(
                    symmetric_system, configuration, sigma
                ),
                sigma,
            )
            assert double == configuration

    def test_transport_rejects_non_automorphism(self, symmetric_system):
        with pytest.raises(ModelError):
            transport_configuration(
                symmetric_system,
                next(symmetric_system.all_configurations()),
                [1, 0, 2, 3],
            )

    def test_symmetric_configurations_are_fixed_points(
        self, symmetric_system
    ):
        sigma = mirror_of_path(4)
        fixed = list(symmetric_configurations(symmetric_system, sigma))
        assert fixed
        for configuration in fixed:
            assert (
                transport_configuration(
                    symmetric_system, configuration, sigma
                )
                == configuration
            )

    def test_equivariance_everywhere(self, symmetric_system):
        sigma = mirror_of_path(4)
        assert all(
            is_equivariant_synchronous_step(
                symmetric_system, configuration, sigma
            )
            for configuration in symmetric_system.all_configurations()
        )

    def test_symmetric_class_closed(self, symmetric_system):
        sigma = mirror_of_path(4)
        count, violations = check_symmetric_class_closed(
            symmetric_system, sigma
        )
        assert count > 0
        assert violations == []

    def test_no_leader_in_symmetric_class(self, symmetric_system):
        sigma = mirror_of_path(4)
        spec = TreeLeaderSpec()
        assert not any(
            spec.legitimate(symmetric_system, configuration)
            for configuration in symmetric_configurations(
                symmetric_system, sigma
            )
        )

    def test_default_port_numbering_breaks_symmetry(self):
        """With ascending-id ports, A3's min() is not σ-equivariant —
        demonstrating why the impossibility quantifies over port
        numberings."""
        system = System(LeaderTreeAlgorithm(), Topology(figure3_chain()))
        sigma = mirror_of_path(4)
        assert not all(
            is_equivariant_synchronous_step(system, configuration, sigma)
            for configuration in system.all_configurations()
        )

    def test_mirror_of_path(self):
        assert mirror_of_path(4) == [3, 2, 1, 0]
        assert mirror_of_path(5) == [4, 3, 2, 1, 0]
