"""Unit tests for closure and convergence analysis."""

import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
    single_token_configuration,
)
from repro.algorithms.two_process import BothTrueSpec
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.stabilization.closure import check_strong_closure
from repro.stabilization.convergence import (
    backward_reachable,
    certain_convergence,
    possible_convergence,
    shortest_distances_to_legitimate,
    strongly_connected_components,
    transient_cycles_exist,
)
from repro.stabilization.statespace import StateSpace


class TestSCC:
    def test_single_cycle(self):
        adjacency = [[1], [2], [0]]
        components = strongly_connected_components(adjacency)
        assert sorted(map(sorted, components)) == [[0, 1, 2]]

    def test_dag(self):
        adjacency = [[1], [2], []]
        components = strongly_connected_components(adjacency)
        assert all(len(c) == 1 for c in components)
        # reverse topological: sinks first
        assert components[0] == [2]

    def test_two_components(self):
        adjacency = [[1], [0], [3], [2]]
        components = strongly_connected_components(adjacency)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]

    def test_self_loop_is_singleton_component(self):
        adjacency = [[0], []]
        components = strongly_connected_components(adjacency)
        assert sorted(map(sorted, components)) == [[0], [1]]

    def test_big_line(self):
        n = 5000
        adjacency = [[i + 1] for i in range(n - 1)] + [[]]
        components = strongly_connected_components(adjacency)
        assert len(components) == n  # iterative: no recursion overflow


class TestClosure:
    def test_token_ring_single_token_closed(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        assert check_strong_closure(space, legitimate) == []

    def test_two_token_set_not_closed(self, ring5_system):
        """'At most 2 tokens' is not closed downward... but '≥2 tokens'
        escapes into L when tokens merge — a closure violation."""
        space = StateSpace.explore(ring5_system, DistributedRelation())
        from repro.algorithms.token_ring import count_tokens

        at_least_two = space.legitimate_mask(
            lambda system, config: count_tokens(system, config) >= 2
        )
        violations = check_strong_closure(space, at_least_two)
        assert violations
        first = violations[0]
        assert at_least_two[first.source_id]
        assert not at_least_two[first.target_id]


class TestPossibleConvergence:
    def test_token_ring_possible(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        possible, stranded = possible_convergence(space, legitimate)
        assert possible and not stranded

    def test_two_process_central_stranded(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        possible, stranded = possible_convergence(space, legitimate)
        assert not possible
        # every transient configuration is stranded: (T,T) unreachable
        assert len(stranded) == 3

    def test_empty_target(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        possible, stranded = possible_convergence(space, [False] * 4)
        assert not possible
        assert len(stranded) == 4

    def test_backward_reachable(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        target = [
            config == ((False,), (False,))
            for config in space.configurations
        ]
        reached = backward_reachable(space, target)
        # (T,T) is terminal and never reaches (F,F)
        assert not reached[space.id_of(((True,), (True,)))]
        assert reached[space.id_of(((True,), (False,)))]


class TestCertainConvergence:
    def test_token_ring_not_certain(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        report = certain_convergence(space, legitimate)
        assert not report.holds
        assert report.has_transient_cycle
        assert not report.terminal_outside

    def test_two_process_distributed_not_certain(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        report = certain_convergence(space, legitimate)
        assert not report.holds
        assert report.has_transient_cycle

    def test_certain_when_l_is_everything(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        report = certain_convergence(space, [True] * 4)
        assert report.holds

    def test_terminal_outside_detected(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        # declare only (F,F) legitimate: the terminal (T,T) is outside
        legitimate = [
            config == ((False,), (False,))
            for config in space.configurations
        ]
        report = certain_convergence(space, legitimate)
        assert space.id_of(((True,), (True,))) in report.terminal_outside

    def test_transient_cycles_flag(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        assert transient_cycles_exist(space, legitimate)
        assert not transient_cycles_exist(space, [True] * 4)


class TestDistances:
    def test_distance_zero_on_legitimate(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        distances = shortest_distances_to_legitimate(space, legitimate)
        legit_id = space.id_of(single_token_configuration(ring5_system))
        assert distances[legit_id] == 0

    def test_distances_positive_and_finite(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        distances = shortest_distances_to_legitimate(space, legitimate)
        assert all(d >= 0 for d in distances)  # -1 never appears: weak-stab

    def test_stranded_marked_minus_one(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        distances = shortest_distances_to_legitimate(space, legitimate)
        assert distances[space.id_of(((False,), (False,)))] == -1
