"""Tests for convergence profiles."""

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.stabilization.profile import convergence_profile
from repro.stabilization.statespace import StateSpace


class TestConvergenceProfile:
    def test_token_ring_profile(self):
        system = make_token_ring_system(5)
        space = StateSpace.explore(system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        profile = convergence_profile(space, legitimate)
        assert profile.num_configurations == 32
        assert profile.num_legitimate == 10
        assert profile.num_stranded == 0
        assert profile.all_can_converge
        assert profile.max_distance >= 1
        assert 0 < profile.mean_distance < profile.max_distance + 1

    def test_histogram_accounts_for_everything(self):
        system = make_token_ring_system(4)
        space = StateSpace.explore(system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        profile = convergence_profile(space, legitimate)
        total = sum(count for _, count in profile.histogram)
        assert total + profile.num_stranded == profile.num_configurations
        assert dict(profile.histogram)[0] == profile.num_legitimate

    def test_stranded_counted(self):
        system = make_two_process_system()
        space = StateSpace.explore(system, CentralRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        profile = convergence_profile(space, legitimate)
        assert profile.num_stranded == 3
        assert not profile.all_can_converge

    def test_row_shape(self):
        system = make_token_ring_system(4)
        space = StateSpace.explore(system, CentralRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        row = convergence_profile(space, legitimate).row()
        assert set(row) == {
            "|C|",
            "|L|",
            "stranded",
            "max dist to L",
            "mean dist to L",
        }

    def test_all_legitimate_profile(self):
        system = make_two_process_system()
        space = StateSpace.explore(system, CentralRelation())
        profile = convergence_profile(space, [True] * 4)
        assert profile.max_distance == 0
        assert profile.mean_distance == 0.0
        assert profile.num_legitimate == 4
