"""Unit tests for state-space exploration."""

import pytest

from repro.algorithms.token_ring import TokenCirculationSpec
from repro.algorithms.two_process import make_two_process_system
from repro.errors import StateSpaceError
from repro.schedulers.relations import (
    CentralRelation,
    DistributedRelation,
    SynchronousRelation,
)
from repro.stabilization.statespace import (
    StateSpace,
    mask_to_subset,
    subset_to_mask,
)


class TestMasks:
    def test_roundtrip(self):
        for subset in [(0,), (1, 3), (0, 2, 5), ()]:
            assert mask_to_subset(subset_to_mask(subset)) == tuple(
                sorted(subset)
            )

    def test_mask_values(self):
        assert subset_to_mask((0, 2)) == 0b101
        assert mask_to_subset(0b110) == (1, 2)


class TestExploreFullSpace:
    def test_two_process_full(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        assert space.num_configurations == 4
        assert space.index[((True,), (True,))] is not None

    def test_terminal_detection(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        terminal = space.terminal_ids()
        assert [space.configurations[t] for t in terminal] == [
            ((True,), (True,))
        ]

    def test_edges_respect_relation(self, two_process_system):
        central = StateSpace.explore(two_process_system, CentralRelation())
        config_id = central.id_of(((False,), (False,)))
        # central: only singleton moves from (F,F) -> (T,F) or (F,T)
        targets = {
            central.configurations[t] for t in central.successors(config_id)
        }
        assert targets == {((True,), (False,)), ((False,), (True,))}

    def test_synchronous_single_successor(self, two_process_system):
        sync = StateSpace.explore(two_process_system, SynchronousRelation())
        config_id = sync.id_of(((False,), (False,)))
        targets = set(sync.successors(config_id))
        assert targets == {sync.id_of(((True,), (True,)))}

    def test_budget_guard(self, ring6_system):
        with pytest.raises(StateSpaceError):
            StateSpace.explore(
                ring6_system, CentralRelation(), max_configurations=10
            )

    def test_id_of_unknown(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        with pytest.raises(StateSpaceError):
            space.id_of(((True,), (True,), (True,)))


class TestExploreReachable:
    def test_restricted_initial_set(self, two_process_system):
        space = StateSpace.explore(
            two_process_system,
            CentralRelation(),
            initial=[((True,), (True,))],
        )
        assert space.num_configurations == 1
        assert space.num_edges == 0

    def test_reachable_closure(self, two_process_system):
        space = StateSpace.explore(
            two_process_system,
            CentralRelation(),
            initial=[((False,), (False,))],
        )
        # (F,F) -> (T,F)/(F,T) -> back to (F,F); (T,T) is unreachable
        # under a central scheduler.
        assert space.num_configurations == 3


class TestQueries:
    @pytest.fixture
    def space(self, ring5_system):
        return StateSpace.explore(ring5_system, CentralRelation())

    def test_reverse_adjacency_consistent(self, space):
        reverse = space.reverse_adjacency()
        forward_count = sum(len(edges) for edges in space.edges)
        reverse_count = sum(len(preds) for preds in reverse)
        assert forward_count == reverse_count

    def test_legitimate_mask(self, space, ring5_system):
        mask = space.legitimate_mask(TokenCirculationSpec().legitimate)
        assert sum(mask) == 10  # |L| = N * m_N = 5 * 2

    def test_find_edge(self, space):
        source = next(
            i for i in range(space.num_configurations) if space.edges[i]
        )
        mask, target = space.edges[source][0]
        assert space.find_edge(source, target) is not None
        assert space.find_edge(source, source) is None or True

    def test_induced_edges(self, space, ring5_system):
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        induced = space.induced_edges(legitimate)
        for source, edges in enumerate(induced):
            for _, target in edges:
                assert legitimate[source] and legitimate[target]

    def test_repr(self, space):
        assert "StateSpace" in repr(space)
