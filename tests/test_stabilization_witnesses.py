"""Unit tests for witness construction (converging runs, lassos, SCCs)."""

import pytest

from repro.algorithms.leader_tree import (
    TreeLeaderSpec,
    make_leader_tree_system,
    satisfies_lc,
)
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.errors import StateSpaceError
from repro.graphs.generators import figure3_chain
from repro.schedulers.fairness import fairness_report
from repro.schedulers.relations import CentralRelation, DistributedRelation
from repro.stabilization.statespace import StateSpace
from repro.stabilization.witnesses import (
    converging_execution,
    find_gouda_witnesses,
    find_strongly_fair_lasso,
    recover_step,
    synchronous_lasso,
    synchronous_successor,
)


class TestRecoverStep:
    def test_recovers_moves(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        source = ((False,), (False,))
        config_id = space.id_of(source)
        mask, target_id = space.edges[config_id][0]
        step = recover_step(
            two_process_system, source, mask, space.configurations[target_id]
        )
        assert step.acting_processes == {0} or step.acting_processes == {1}

    def test_raises_on_impossible_edge(self, two_process_system):
        with pytest.raises(StateSpaceError):
            recover_step(
                two_process_system,
                ((False,), (False,)),
                0b01,
                ((False,), (True,)),  # p0 moving cannot change p1
            )


class TestConvergingExecution:
    def test_reaches_legitimate(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        spec = TokenCirculationSpec()
        legitimate = space.legitimate_mask(spec.legitimate)
        start = next(
            i for i, ok in enumerate(legitimate) if not ok
        )
        trace = converging_execution(space, legitimate, start)
        assert spec.legitimate(ring5_system, trace.final)
        assert not spec.legitimate(ring5_system, trace.initial)

    def test_shortest_path_length(self, ring5_system):
        from repro.stabilization.convergence import (
            shortest_distances_to_legitimate,
        )

        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        distances = shortest_distances_to_legitimate(space, legitimate)
        start = max(
            range(space.num_configurations), key=lambda i: distances[i]
        )
        trace = converging_execution(space, legitimate, start)
        assert trace.length == distances[start]

    def test_zero_length_from_legitimate(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        start = next(i for i, ok in enumerate(legitimate) if ok)
        assert converging_execution(space, legitimate, start).length == 0

    def test_stranded_start_raises(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        with pytest.raises(StateSpaceError):
            converging_execution(
                space, legitimate, space.id_of(((False,), (False,)))
            )


class TestSynchronous:
    def test_successor_none_at_terminal(self, two_process_system):
        assert (
            synchronous_successor(two_process_system, ((True,), (True,)))
            is None
        )

    def test_successor_unique(self, two_process_system):
        target, step = synchronous_successor(
            two_process_system, ((False,), (False,))
        )
        assert target == ((True,), (True,))
        assert step.acting_processes == {0, 1}

    def test_lasso_converging_case(self, two_process_system):
        trace, lasso = synchronous_lasso(
            two_process_system, ((False,), (False,))
        )
        assert lasso is None
        assert trace.final == ((True,), (True,))

    def test_lasso_oscillating_case(self, chain4_system):
        initial = ((0,), (0,), (0,), (0,))
        trace, lasso = synchronous_lasso(chain4_system, initial)
        assert lasso is not None
        assert lasso.cycle_length >= 2
        assert all(
            not satisfies_lc(chain4_system, c)
            for c in lasso.cycle_configurations
        )

    def test_probabilistic_step_rejected(self):
        from repro.transformer.coin_toss import make_transformed_system

        transformed = make_transformed_system(make_two_process_system())
        base = ((False, False), (False, False))
        with pytest.raises(StateSpaceError):
            synchronous_successor(transformed, base)


class TestStronglyFairLasso:
    def test_found_for_token_ring(self, ring6_system):
        space = StateSpace.explore(ring6_system, CentralRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        lasso = find_strongly_fair_lasso(space, legitimate)
        assert lasso is not None
        report = fairness_report(ring6_system, lasso, CentralRelation())
        assert report.strongly_fair
        assert all(not legitimate[space.id_of(c)]
                   for c in lasso.cycle_configurations)

    def test_none_for_odd_ring_under_central(self):
        """On a 5-ring (m=2, token parity odd) central transient SCCs
        always starve someone... the detector must simply find nothing or
        a genuinely strongly fair cycle; for N=5 token count >= 3 in the
        transient region and merging is always possible, but parked
        tokens make strong fairness fail.  Verify the detector's output
        is self-consistent instead of asserting emptiness."""
        system = make_token_ring_system(5)
        space = StateSpace.explore(system, CentralRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        lasso = find_strongly_fair_lasso(space, legitimate)
        if lasso is not None:
            report = fairness_report(system, lasso, CentralRelation())
            assert report.strongly_fair
            assert all(
                not legitimate[space.id_of(c)]
                for c in lasso.cycle_configurations
            )

    def test_none_when_no_transient_cycle(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        # L = {(F,F)}: transitions (T,F)->(F,F) leave the transient set...
        # build L = everything except the two mixed states; the mixed
        # states have no transient cycle between them.
        legitimate = [
            config in {((False,), (False,)), ((True,), (True,))}
            for config in space.configurations
        ]
        assert find_strongly_fair_lasso(space, legitimate) is None


class TestGoudaWitnesses:
    def test_weak_stabilizing_has_none(self, ring5_system):
        space = StateSpace.explore(ring5_system, DistributedRelation())
        legitimate = space.legitimate_mask(
            TokenCirculationSpec().legitimate
        )
        assert find_gouda_witnesses(space, legitimate) == []

    def test_central_two_process_has_trap(self, two_process_system):
        space = StateSpace.explore(two_process_system, CentralRelation())
        legitimate = space.legitimate_mask(BothTrueSpec().legitimate)
        witnesses = find_gouda_witnesses(space, legitimate)
        assert len(witnesses) == 1
        trap = {space.configurations[i] for i in witnesses[0]}
        assert ((False,), (False,)) in trap

    def test_terminal_outside_l_is_witness(self, two_process_system):
        space = StateSpace.explore(two_process_system, DistributedRelation())
        legitimate = [
            config == ((False,), (False,))
            for config in space.configurations
        ]
        witnesses = find_gouda_witnesses(space, legitimate)
        flat = {i for component in witnesses for i in component}
        assert space.id_of(((True,), (True,))) in flat
