"""Step-backend tier: registry contracts, fast-path bit-equality, and
the wiring of ``backend=`` through engines, runners, and the CLI.

The cross-engine conformance matrix (``test_engine_conformance.py``)
exercises every available backend on every cell; this module covers the
machinery itself: registry errors, availability fallback, the buffered
draw shim's stream preservation (results *and* final generator state),
rank-space super-stepping engagement/abort/budget-fallback, per-phase
profiling counters, and the parameter plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance_registry import (
    CONFORMANCE_SAMPLERS,
    conformance_entry,
    conformance_system,
)
from repro.core.encoding import expansion_context
from repro.core.kernel import TransitionKernel
from repro.errors import MarkovError, ModelError
from repro.markov.backends import (
    DEFAULT_SUPERSTEP_BUDGET,
    PROFILE_PHASES,
    STEP_BACKENDS,
    NumbaStepBackend,
    NumpyStepBackend,
    StepBackend,
    _numba_installed,
    available_backends,
    backend_names,
    default_backend,
    get_step_backend,
    register_step_backend,
    resolve_backend,
    set_default_backend,
)
from repro.markov.batch import (
    BatchEngine,
    EnabledCountLegitimacy,
    batch_strategy_for,
    compile_legitimacy,
    encode_initials,
)
from repro.markov.montecarlo import (
    MonteCarloRunner,
    random_configurations,
)
from repro.markov.sweep_engine import SweepPointSpec, SweepRunner
from repro.random_source import RandomSource

NUMBA_PRESENT = _numba_installed()

REFERENCE = NumpyStepBackend(block_draw=False, superstep=False)


# ----------------------------------------------------------------------
# shared run helper
# ----------------------------------------------------------------------
def _batch_run(
    system_name,
    sampler_key,
    backend,
    seed=2024,
    trials=300,
    max_steps=400,
    legitimacy=None,
    initials=None,
):
    """One BatchEngine.run on a registry system; returns (result, state).

    The returned generator-state string lets tests assert that a fast
    path leaves the random stream exactly where the reference loop
    would (block draw) or untouched relative to its own replay
    (superstep consumes no draws at all, which is fine — deterministic
    runs never read them).
    """
    entry = conformance_entry(system_name)
    system = conformance_system(system_name)
    engine = BatchEngine(TransitionKernel(system))
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS[sampler_key]())
    if legitimacy is None:
        legit = (
            entry.batch_legitimate
            if entry.batch_legitimate is not None
            else entry.legitimate(system)
        )
        legitimacy = compile_legitimacy(legit)
    if initials is None:
        initials = random_configurations(
            system, RandomSource(seed + 1), 16
        )
    codes = encode_initials(engine.encoding, initials, trials)
    generator = RandomSource(seed).numpy_generator()
    result = engine.run(
        strategy, legitimacy, codes, max_steps, generator, backend=backend
    )
    return result, str(generator.bit_generator.state)


def _assert_same_outcome(reference, candidate):
    assert np.array_equal(reference.times, candidate.times)
    assert np.array_equal(reference.converged, candidate.converged)
    assert np.array_equal(reference.hit_terminal, candidate.hit_terminal)


# ----------------------------------------------------------------------
# registry contracts
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert "numpy" in backend_names()
    assert "numba" in backend_names()
    assert "numpy" in available_backends()


def test_unknown_backend_name_raises():
    with pytest.raises(MarkovError, match="unknown step backend"):
        get_step_backend("cuda")
    with pytest.raises(MarkovError, match="unknown step backend"):
        resolve_backend("cuda")


def test_duplicate_registration_raises():
    name = "test-shadow-backend"
    register_step_backend(name, NumpyStepBackend)
    try:
        with pytest.raises(MarkovError, match="already registered"):
            register_step_backend(name, NumpyStepBackend)
        # Explicit replacement is allowed.
        register_step_backend(name, NumpyStepBackend, replace=True)
    finally:
        del STEP_BACKENDS[name]


def test_auto_is_reserved():
    with pytest.raises(MarkovError, match="reserved"):
        register_step_backend("auto", NumpyStepBackend)


def test_resolve_accepts_instances_and_default():
    backend = NumpyStepBackend(superstep=False)
    assert resolve_backend(backend) is backend
    assert default_backend() == "auto"
    assert isinstance(resolve_backend(None), StepBackend)
    assert isinstance(resolve_backend("auto"), StepBackend)


def test_set_default_backend_validates_and_restores():
    assert default_backend() == "auto"
    try:
        assert set_default_backend("numpy") == "numpy"
        assert resolve_backend(None).name == "numpy"
        with pytest.raises(MarkovError, match="unknown step backend"):
            set_default_backend("cuda")
        with pytest.raises(MarkovError, match="backend spec"):
            set_default_backend(42)
    finally:
        set_default_backend("auto")
    assert default_backend() == "auto"


@pytest.mark.skipif(
    NUMBA_PRESENT, reason="numba installed; absence fallback not testable"
)
def test_numba_absent_fallback():
    """Without numba: auto-detection resolves to numpy, the registered
    numba backend reports unavailable, and requesting it by name is a
    clear error rather than an import crash."""
    assert "numba" not in available_backends()
    assert resolve_backend("auto").name == "numpy"
    assert set_default_backend("auto") == "numpy"
    with pytest.raises(MarkovError, match="not available"):
        get_step_backend("numba")
    with pytest.raises(MarkovError, match="not available"):
        set_default_backend("numba")


# ----------------------------------------------------------------------
# block-drawn randomness: stream preservation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "system_name,sampler_key",
    [
        ("token-ring5", "central"),
        ("herman-ring5", "synchronous"),
        ("herman-ring5", "central"),
        ("israeli-jalfon-ring6", "central"),
    ],
)
def test_block_draw_preserves_results_and_stream(system_name, sampler_key):
    """Pre-drawing k steps of randomness in one Generator call must be
    invisible: identical retirement vectors *and* identical final
    generator state (the end-of-block rewind discards exactly the
    consumed prefix)."""
    reference, ref_state = _batch_run(system_name, sampler_key, REFERENCE)
    block = NumpyStepBackend(block_draw=True, superstep=False)
    candidate, state = _batch_run(system_name, sampler_key, block)
    _assert_same_outcome(reference, candidate)
    assert state == ref_state


def test_rejection_samplers_fall_back_to_per_step_draws():
    """The independent-coin strategies redraw a data-dependent number of
    uniforms, so they cannot be block-drawn; the backend must keep the
    sequential path (identical stream) rather than corrupt it."""
    reference, ref_state = _batch_run("token-ring5", "distributed", REFERENCE)
    candidate, state = _batch_run(
        "token-ring5", "distributed", NumpyStepBackend(superstep=False)
    )
    _assert_same_outcome(reference, candidate)
    assert state == ref_state


# ----------------------------------------------------------------------
# rank-space super-stepping
# ----------------------------------------------------------------------
def test_superstep_engages_and_is_bit_identical():
    """Deterministic synchronous cells take the rank-space path and the
    recorded first-hit times must match the per-step loop exactly (the
    binary-lifting descent bisects within the last jump)."""
    backend = NumpyStepBackend()
    candidate, _ = _batch_run("coloring-ring5", "synchronous", backend)
    assert backend.last_superstep
    reference, _ = _batch_run("coloring-ring5", "synchronous", REFERENCE)
    _assert_same_outcome(reference, candidate)
    assert candidate.converged.any()  # nontrivial first-hit recovery


def test_superstep_handles_livelock_timeouts():
    """Synchronous token circulation livelocks (the paper's Theorem 1
    setting): every trial must drain its budget and time out with the
    same default vectors as the reference loop."""
    backend = NumpyStepBackend()
    candidate, _ = _batch_run(
        "token-ring5", "synchronous", backend, max_steps=123
    )
    assert backend.last_superstep
    reference, _ = _batch_run(
        "token-ring5", "synchronous", REFERENCE, max_steps=123
    )
    _assert_same_outcome(reference, candidate)
    assert not candidate.converged.all()


def test_superstep_over_budget_falls_back_to_plain_loop():
    """A state budget smaller than the reachable closure must abort the
    plan and take the per-step path, with identical results."""
    tiny = NumpyStepBackend(superstep=True, superstep_budget=3)
    candidate, _ = _batch_run("coloring-ring5", "synchronous", tiny)
    assert not tiny.last_superstep
    reference, _ = _batch_run("coloring-ring5", "synchronous", REFERENCE)
    _assert_same_outcome(reference, candidate)
    assert DEFAULT_SUPERSTEP_BUDGET > 3


def test_superstep_aborts_on_central_choice():
    """The central daemon on a multi-enabled start has a real scheduling
    choice, so the deterministic plan must abort during exploration and
    the stochastic per-step path must run (stream-exactly)."""
    backend = NumpyStepBackend()
    reference, ref_state = _batch_run("token-ring5", "central", REFERENCE)
    candidate, state = _batch_run("token-ring5", "central", backend)
    assert not backend.last_superstep
    _assert_same_outcome(reference, candidate)
    assert state == ref_state


def test_superstep_central_single_enabled_run():
    """A single-token ring under the central daemon is deterministic
    (exactly one enabled process at every reachable state), so the
    central eligibility check passes and the rank-space path runs."""
    system = conformance_system("token-ring5")
    engine = BatchEngine(TransitionKernel(system))
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS["central"]())
    # A legitimate (single-token) configuration; an unreachable
    # legitimacy count keeps every trial alive so the run exercises the
    # jump ladder and the timeout drain rather than retiring at t=0.
    legitimacy = EnabledCountLegitimacy(system.num_processes + 1)
    initials = [
        config
        for config in random_configurations(
            system, RandomSource(7), 200
        )
    ]
    context = expansion_context(engine.tables)
    single = [
        config
        for config in initials
        if engine.tables.enabled(
            engine.tables.pack(engine.encoding.encode_batch([config]))
        ).sum()
        == 1
    ]
    assert single, "expected at least one single-enabled configuration"
    codes = encode_initials(engine.encoding, single[:4], 50)
    backend = NumpyStepBackend()
    result = engine.run(
        strategy,
        legitimacy,
        codes,
        60,
        RandomSource(5).numpy_generator(),
        backend=backend,
    )
    assert backend.last_superstep
    reference_result = engine.run(
        strategy,
        legitimacy,
        codes,
        60,
        RandomSource(5).numpy_generator(),
        backend=REFERENCE,
    )
    _assert_same_outcome(reference_result, result)
    assert context.deterministic


def test_superstep_skipped_for_decoding_legitimacy():
    """Decoding predicates would have to run per interned state, so the
    plan must decline and the per-step path must evaluate them."""
    system = conformance_system("coloring-ring5")
    entry = conformance_entry("coloring-ring5")
    engine = BatchEngine(TransitionKernel(system))
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS["synchronous"]())
    legitimacy = compile_legitimacy(entry.legitimate(system))  # decoding
    initials = random_configurations(system, RandomSource(11), 16)
    codes = encode_initials(engine.encoding, initials, 100)
    backend = NumpyStepBackend()
    result = engine.run(
        strategy,
        legitimacy,
        codes,
        200,
        RandomSource(3).numpy_generator(),
        backend=backend,
    )
    assert not backend.last_superstep
    reference_result = engine.run(
        strategy,
        legitimacy,
        codes,
        200,
        RandomSource(3).numpy_generator(),
        backend=REFERENCE,
    )
    _assert_same_outcome(reference_result, result)


def test_deterministic_successor_ranks_guards_stochastic_tables():
    """Herman's protocol tosses coins, so its tables are not
    deterministic and the successor-map compiler must refuse."""
    system = conformance_system("herman-ring5")
    engine = BatchEngine(TransitionKernel(system))
    context = expansion_context(engine.tables)
    assert not context.deterministic
    with pytest.raises(ModelError, match="deterministic"):
        context.deterministic_successor_ranks(np.arange(4, dtype=np.int64))


def test_expansion_context_memoized_on_tables():
    engine = BatchEngine(TransitionKernel(conformance_system("token-ring5")))
    assert expansion_context(engine.tables) is expansion_context(
        engine.tables
    )


# ----------------------------------------------------------------------
# per-phase profiling counters
# ----------------------------------------------------------------------
def test_profile_counters_on_per_step_path():
    engine = BatchEngine(TransitionKernel(conformance_system("token-ring5")))
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS["central"]())
    entry = conformance_entry("token-ring5")
    initials = random_configurations(
        conformance_system("token-ring5"), RandomSource(21), 8
    )
    codes = encode_initials(engine.encoding, initials, 100)
    result = engine.run(
        strategy,
        compile_legitimacy(entry.batch_legitimate),
        codes,
        200,
        RandomSource(9).numpy_generator(),
        profile=True,
    )
    assert result.profile is not None
    assert set(PROFILE_PHASES) <= set(result.profile)
    assert all(value >= 0.0 for value in result.profile.values())
    assert sum(result.profile.values()) > 0.0


def test_profile_counters_on_superstep_path():
    engine = BatchEngine(
        TransitionKernel(conformance_system("coloring-ring5"))
    )
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS["synchronous"]())
    entry = conformance_entry("coloring-ring5")
    initials = random_configurations(
        conformance_system("coloring-ring5"), RandomSource(22), 8
    )
    codes = encode_initials(engine.encoding, initials, 100)
    result = engine.run(
        strategy,
        compile_legitimacy(entry.batch_legitimate),
        codes,
        200,
        RandomSource(9).numpy_generator(),
        profile=True,
    )
    assert result.profile is not None
    assert "superstep_build" in result.profile
    assert "superstep_execute" in result.profile


def test_unprofiled_run_has_no_profile():
    result, _ = _batch_run("token-ring5", "central", None, trials=50)
    assert result.profile is None


# ----------------------------------------------------------------------
# wiring: engines, runners, sweep runner, CLI
# ----------------------------------------------------------------------
def test_batch_engine_run_rejects_unknown_backend():
    engine = BatchEngine(TransitionKernel(conformance_system("token-ring5")))
    strategy = batch_strategy_for(CONFORMANCE_SAMPLERS["central"]())
    codes = encode_initials(
        engine.encoding,
        random_configurations(
            conformance_system("token-ring5"), RandomSource(1), 4
        ),
        10,
    )
    with pytest.raises(MarkovError, match="unknown step backend"):
        engine.run(
            strategy,
            compile_legitimacy(EnabledCountLegitimacy(1)),
            codes,
            10,
            RandomSource(1).numpy_generator(),
            backend="cuda",
        )


def test_montecarlo_runner_threads_backend():
    system = conformance_system("token-ring5")
    entry = conformance_entry("token-ring5")
    sampler = CONFORMANCE_SAMPLERS["central"]()
    kwargs = dict(
        legitimate=entry.legitimate(system),
        trials=120,
        max_steps=2000,
        batch_legitimate=entry.batch_legitimate,
    )
    reference = MonteCarloRunner(
        system, engine="batch", backend=REFERENCE
    ).estimate(sampler, rng=RandomSource(77), **kwargs)
    fast = MonteCarloRunner(system, engine="batch").estimate(
        sampler, rng=RandomSource(77), **kwargs
    )
    per_call = MonteCarloRunner(system, engine="batch").estimate(
        sampler, rng=RandomSource(77), backend="numpy", **kwargs
    )
    assert reference == fast == per_call


def test_sweep_runner_threads_backend():
    system = conformance_system("coloring-ring5")
    entry = conformance_entry("coloring-ring5")
    point = SweepPointSpec(
        system=system,
        sampler=CONFORMANCE_SAMPLERS["synchronous"](),
        legitimate=entry.legitimate(system),
        trials=150,
        max_steps=200,
        seed=31,
        batch_legitimate=entry.batch_legitimate,
        initial_configurations=tuple(
            random_configurations(system, RandomSource(31), 150)
        ),
    )
    (reference,) = SweepRunner(engine="batch", backend=REFERENCE).run(
        [point]
    )
    (fast,) = SweepRunner(engine="batch").run([point])
    assert reference == fast


def test_cli_backend_flag_parses_and_sets_default():
    from repro.experiments.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "THM1", "--backend", "numpy"])
    assert args.backend == "numpy"
    args = parser.parse_args(["run-all"])
    assert args.backend is None
    try:
        assert set_default_backend("numpy") == "numpy"
        engine = BatchEngine(
            TransitionKernel(conformance_system("token-ring5"))
        )
        assert resolve_backend(engine.backend).name == "numpy"
    finally:
        set_default_backend("auto")


# ----------------------------------------------------------------------
# optional numba backend (skips cleanly when absent)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not NUMBA_PRESENT, reason="numba not installed")
@pytest.mark.parametrize(
    "system_name,sampler_key",
    [
        ("token-ring5", "central"),
        ("herman-ring5", "synchronous"),
        ("herman-ring5", "central"),
        ("israeli-jalfon-ring6", "central"),
    ],
)
def test_numba_backend_bit_equal_with_stream(system_name, sampler_key):
    """The JIT kernel consumes the same pre-drawn buffers in the same
    layout, so results and the final generator state must both match
    the reference loop exactly."""
    reference, ref_state = _batch_run(system_name, sampler_key, REFERENCE)
    numba_backend = get_step_backend("numba")
    assert isinstance(numba_backend, NumbaStepBackend)
    candidate, state = _batch_run(system_name, sampler_key, numba_backend)
    _assert_same_outcome(reference, candidate)
    assert state == ref_state


@pytest.mark.skipif(not NUMBA_PRESENT, reason="numba not installed")
def test_numba_backend_is_auto_selected():
    assert "numba" in available_backends()
    assert resolve_backend("auto").name == "numba"
