"""Unit and edge-case tests for the fused multi-point sweep engine.

The distributional conformance of the fused engine is asserted by the
``tests/test_engine_conformance.py`` matrix; this module covers the
fusion *machinery*: grouping and block scheduling, per-row budgets,
early retirement, fallbacks, validation, and the ``sweep_fused`` /
``MonteCarloRunner.batch`` wiring.
"""

import numpy as np
import pytest

from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.leader_tree import make_leader_tree_system
from repro.analysis.sweep import sweep_fused
from repro.errors import MarkovError
from repro.graphs.generators import path
from repro.markov.batch import EnabledCountLegitimacy
from repro.markov.sweep_engine import (
    SWEEP_ENGINES,
    SweepPointSpec,
    SweepRunner,
    default_fusion,
    set_default_fusion,
)
from repro.random_source import RandomSource
from repro.schedulers.samplers import (
    CentralRandomizedSampler,
    RoundRobinSampler,
    SynchronousSampler,
)

RING5 = make_token_ring_system(5)
RING6 = make_token_ring_system(6)
RING5_SPEC = TokenCirculationSpec()


def ring_point(system=RING5, seed=1, trials=40, max_steps=20_000, **kwargs):
    spec = TokenCirculationSpec()
    defaults = dict(
        system=system,
        sampler=CentralRandomizedSampler(),
        legitimate=lambda c, s=system, sp=spec: sp.legitimate(s, c),
        trials=trials,
        max_steps=max_steps,
        seed=seed,
        batch_legitimate=EnabledCountLegitimacy(1),
    )
    defaults.update(kwargs)
    return SweepPointSpec(**defaults)


class TestValidation:
    def test_empty_point_list_rejected(self):
        with pytest.raises(MarkovError, match="at least one sweep point"):
            SweepRunner().run([])

    def test_duplicate_point_rejected(self):
        point = ring_point(seed=7)
        with pytest.raises(MarkovError, match="duplicate sweep point"):
            SweepRunner().run([point, point])

    def test_value_equal_duplicate_rejected(self):
        legitimate = lambda c: RING5_SPEC.legitimate(RING5, c)
        batch_legitimate = EnabledCountLegitimacy(1)
        sampler = CentralRandomizedSampler()
        points = [
            ring_point(
                seed=3,
                sampler=sampler,
                legitimate=legitimate,
                batch_legitimate=batch_legitimate,
            )
            for _ in range(2)
        ]
        with pytest.raises(MarkovError, match="duplicate sweep point"):
            SweepRunner().run(points)

    def test_distinct_seeds_are_not_duplicates(self):
        results = SweepRunner().run(
            [ring_point(seed=1), ring_point(seed=2)]
        )
        assert len(results) == 2

    def test_zero_trials_rejected(self):
        with pytest.raises(MarkovError, match="at least one trial"):
            SweepRunner().run([ring_point(trials=0)])

    def test_negative_budget_rejected(self):
        with pytest.raises(MarkovError, match="max_steps"):
            SweepRunner().run([ring_point(max_steps=-1)])

    def test_empty_initials_rejected(self):
        with pytest.raises(
            MarkovError, match="at least one initial configuration"
        ):
            SweepRunner().run(
                [ring_point(initial_configurations=())]
            )

    def test_non_spec_rejected(self):
        with pytest.raises(MarkovError, match="expected SweepPointSpec"):
            SweepRunner().run([{"system": RING5}])

    def test_unknown_engine_rejected(self):
        with pytest.raises(MarkovError, match="unknown engine"):
            SweepRunner(engine="warp")
        assert SWEEP_ENGINES == ("auto", "fused", "batch", "scalar")


class TestGroupingAndPlan:
    def test_single_point_group_fuses(self):
        runner = SweepRunner(engine="fused")
        (result,) = runner.run([ring_point()])
        assert result.converged == result.trials
        (execution,) = runner.last_plan
        assert execution.engine == "fused"
        assert execution.fused_rows == 40

    def test_mixed_n_group_runs_block_scheduled_sub_batches(self):
        """Different-N rings share one (algorithm, topology) group but
        fuse per system: two sub-batches, both fully fused."""
        runner = SweepRunner(engine="fused")
        points = [
            ring_point(system=RING5, seed=1),
            ring_point(system=RING6, seed=2, trials=30),
            ring_point(system=RING5, seed=3),
        ]
        results = runner.run(points)
        assert [r.trials for r in results] == [40, 30, 40]
        assert all(r.censored == 0 for r in results)
        groups = {execution.group for execution in runner.last_plan}
        assert len(groups) == 1  # one (algorithm, topology) family
        # The two ring5 points fused into one 80-row matrix; ring6 ran
        # its own 30-row sub-batch over its own tables.
        assert runner.last_plan[0].fused_rows == 80
        assert runner.last_plan[2].fused_rows == 80
        assert runner.last_plan[1].fused_rows == 30

    def test_results_align_with_input_order(self):
        runner = SweepRunner(engine="fused")
        points = [
            ring_point(seed=1, trials=10),
            ring_point(system=RING6, seed=2, trials=20),
            ring_point(seed=3, trials=30),
        ]
        results = runner.run(points)
        assert [r.trials for r in results] == [10, 20, 30]
        assert [e.index for e in runner.last_plan] == [0, 1, 2]

    def test_runner_caches_tables_across_runs(self):
        runner = SweepRunner(engine="fused")
        runner.run([ring_point(seed=1)])
        engine_first = runner._entry_for(RING5).engine
        runner.run([ring_point(seed=2)])
        assert runner._entry_for(RING5).engine is engine_first


class TestPerRowBudgetsAndRetirement:
    def test_early_convergence_does_not_stop_siblings(self):
        """A point starting legitimate retires at time 0 while its fused
        sibling keeps stepping to convergence."""
        legitimate_start = next(
            c
            for c in RING5.all_configurations()
            if RING5_SPEC.legitimate(RING5, c)
        )
        runner = SweepRunner(engine="fused")
        instant, running = runner.run(
            [
                ring_point(
                    seed=1,
                    trials=10,
                    initial_configurations=(legitimate_start,),
                ),
                ring_point(seed=2, trials=50),
            ]
        )
        assert instant.converged == 10
        assert instant.stats.mean == 0.0
        assert running.converged == 50
        assert running.stats.mean > 0.0

    def test_per_row_budget_censors_only_its_point(self):
        """A tiny budget censors its own rows; the generous sibling in
        the same matrix still converges fully."""
        tight, generous = SweepRunner(engine="fused").run(
            [
                ring_point(seed=5, trials=60, max_steps=1),
                ring_point(seed=6, trials=60, max_steps=20_000),
            ]
        )
        assert tight.censored > 0
        assert tight.converged + tight.censored == 60
        # Converged-within-1-step trials all report times <= 1.
        assert all(t <= 1.0 for t in tight.samples)
        assert generous.censored == 0

    def test_budget_censoring_matches_scalar_counts(self):
        """Identical explicit starts + deterministic-free comparison:
        the fused per-row budget censors the same trial count the
        scalar oracle censors for the same budget."""
        starts = tuple(
            c for c in RING5.all_configurations()
        )[:10]
        for engine in ("fused", "scalar"):
            point = ring_point(
                seed=11,
                trials=10,
                max_steps=0,
                initial_configurations=starts,
            )
            (result,) = SweepRunner(engine=engine).run([point])
            legit = sum(
                1 for c in starts if RING5_SPEC.legitimate(RING5, c)
            )
            assert result.converged == legit
            assert result.censored == 10 - legit

    def test_zero_step_budget_tests_time_zero_legitimacy(self):
        legitimate_start = next(
            c
            for c in RING5.all_configurations()
            if RING5_SPEC.legitimate(RING5, c)
        )
        (result,) = SweepRunner(engine="fused").run(
            [
                ring_point(
                    seed=1,
                    trials=5,
                    max_steps=0,
                    initial_configurations=(legitimate_start,),
                )
            ]
        )
        assert result.converged == 5
        assert result.stats.mean == 0.0


class TestFallbacks:
    def test_over_budget_tables_fall_back_to_scalar_on_auto(self):
        runner = SweepRunner(engine="auto", table_budget=1)
        (result,) = runner.run([ring_point(trials=10)])
        assert runner.last_plan[0].engine == "scalar"
        assert result.converged == 10

    def test_over_budget_tables_raise_on_fused(self):
        runner = SweepRunner(engine="fused", table_budget=1)
        with pytest.raises(Exception, match="budget"):
            runner.run([ring_point(trials=10)])

    def test_stateful_sampler_falls_back_to_scalar_on_auto(self):
        runner = SweepRunner(engine="auto")
        point = ring_point(
            sampler=RoundRobinSampler(), batch_legitimate=None, trials=10
        )
        (result,) = runner.run([point])
        assert runner.last_plan[0].engine == "scalar"
        assert result.converged == 10

    def test_stateful_sampler_raises_on_fused(self):
        runner = SweepRunner(engine="fused")
        point = ring_point(
            sampler=RoundRobinSampler(), batch_legitimate=None, trials=10
        )
        with pytest.raises(MarkovError, match="no vectorized strategy"):
            runner.run([point])

    def test_mixed_plan_fuses_what_it_can(self):
        runner = SweepRunner(engine="auto")
        results = runner.run(
            [
                ring_point(seed=1, trials=10),
                ring_point(
                    seed=2,
                    trials=10,
                    sampler=RoundRobinSampler(),
                    batch_legitimate=None,
                ),
            ]
        )
        assert [e.engine for e in runner.last_plan] == ["fused", "scalar"]
        assert all(r.converged == 10 for r in results)

    def test_scalar_engine_matches_per_point_oracle(self):
        """SweepRunner(engine='scalar') is exactly the seeded per-point
        oracle: same streams as a direct scalar estimate."""
        from repro.markov.montecarlo import MonteCarloRunner

        point = ring_point(seed=123, trials=15)
        (swept,) = SweepRunner(engine="scalar").run([point])
        direct = MonteCarloRunner(RING5).estimate(
            point.sampler,
            point.legitimate,
            trials=15,
            max_steps=point.max_steps,
            rng=RandomSource(123),
            engine="scalar",
        )
        assert swept == direct


class TestBatchEscapeHatches:
    def test_shared_rng_object_keeps_sequential_streams(self):
        """Cases sharing one rng object ran consecutively on its stream
        pre-fusion; batch() must keep that path instead of rewinding the
        rng to its seed for each case."""
        from repro.markov.montecarlo import MonteCarloRunner

        spec = TokenCirculationSpec()
        legitimate = lambda c: spec.legitimate(RING5, c)
        shared = RandomSource(42)
        cases = [
            dict(
                sampler=CentralRandomizedSampler(),
                legitimate=legitimate,
                trials=10,
                max_steps=5_000,
                rng=shared,
            ),
            dict(
                sampler=CentralRandomizedSampler(),
                legitimate=legitimate,
                trials=10,
                max_steps=5_000,
                rng=shared,
            ),
        ]
        batched = MonteCarloRunner(RING5).batch(cases)
        reference_rng = RandomSource(42)
        reference = [
            MonteCarloRunner(RING5).estimate(
                **dict(case, rng=reference_rng)
            )
            for case in cases
        ]
        assert batched == reference

    def test_non_integer_seed_fuses_via_stream_drawn_subseed(self):
        """RandomSource accepts any hashable seed; the fused path draws
        an integer sub-seed from the stream, so exotic seeds work."""
        from repro.markov.montecarlo import MonteCarloRunner

        spec = TokenCirculationSpec()
        (result,) = MonteCarloRunner(RING5).batch(
            [
                dict(
                    sampler=CentralRandomizedSampler(),
                    legitimate=lambda c: spec.legitimate(RING5, c),
                    trials=8,
                    max_steps=5_000,
                    rng=RandomSource("exp-a"),
                )
            ]
        )
        assert result.converged == 8

    def test_repeated_batch_calls_advance_the_rng(self):
        """The fused path draws its sub-seed from the rng stream, so
        re-running batch() with the same rng object gives a fresh
        replication, exactly like the pre-fusion sequential path —
        never a bit-identical replay."""
        from repro.markov.montecarlo import MonteCarloRunner

        spec = TokenCirculationSpec()
        rng = RandomSource(99)
        runner = MonteCarloRunner(RING5)
        case = dict(
            sampler=CentralRandomizedSampler(),
            legitimate=lambda c: spec.legitimate(RING5, c),
            trials=25,
            max_steps=5_000,
            rng=rng,
        )
        (first,) = runner.batch([dict(case)])
        (second,) = runner.batch([dict(case)])
        assert first.samples != second.samples

    def test_value_equal_cases_fuse_as_distinct_points(self):
        """Two value-equal cases (shared sampler/predicate, equal-seed
        but distinct rng objects) were legal pre-fusion and must not
        trip the duplicate-point check."""
        from repro.markov.montecarlo import MonteCarloRunner

        spec = TokenCirculationSpec()
        sampler = CentralRandomizedSampler()
        legitimate = lambda c: spec.legitimate(RING5, c)
        case = dict(
            sampler=sampler,
            legitimate=legitimate,
            trials=8,
            max_steps=5_000,
        )
        results = MonteCarloRunner(RING5).batch(
            [
                dict(case, rng=RandomSource(7)),
                dict(case, rng=RandomSource(7)),
            ]
        )
        assert len(results) == 2
        assert all(result.converged == 8 for result in results)

    def test_compile_failure_shared_with_sweep_runner(self):
        """batch() hands its cached compilation failure to the sweep
        runner, which then falls back without recompiling."""
        from repro.errors import ModelError
        from repro.markov.montecarlo import MonteCarloRunner

        runner = MonteCarloRunner(RING5)
        error = ModelError("synthetic over-budget tables")
        runner._batch_compile_error = error
        spec = TokenCirculationSpec()
        results = runner.batch(
            [
                dict(
                    sampler=CentralRandomizedSampler(),
                    legitimate=lambda c: spec.legitimate(RING5, c),
                    trials=5,
                    max_steps=5_000,
                    rng=RandomSource(7),
                )
            ]
        )
        assert results[0].converged == 5


class TestDefaultFusionFlag:
    def test_no_fused_flag_restores_per_point_auto(self):
        assert default_fusion() is True
        try:
            set_default_fusion(False)
            runner = SweepRunner(engine="auto")
            runner.run([ring_point(seed=1, trials=10)])
            assert runner.last_plan[0].engine == "per-point-auto"
        finally:
            set_default_fusion(True)

    def test_explicit_fused_ignores_flag(self):
        try:
            set_default_fusion(False)
            runner = SweepRunner(engine="fused")
            runner.run([ring_point(seed=1, trials=10)])
            assert runner.last_plan[0].engine == "fused"
        finally:
            set_default_fusion(True)


class TestSweepFusedEntryPoint:
    def test_sweep_fused_empty_values_matches_sweep(self):
        assert sweep_fused("N", [], lambda n: ring_point(seed=n)) == []

    def test_sweep_fused_rows_and_parameters(self):
        points = sweep_fused(
            "N",
            [5, 6],
            lambda n: ring_point(
                system=RING5 if n == 5 else RING6, seed=n, trials=20
            ),
        )
        assert [p.parameters["N"] for p in points] == [5, 6]
        for point in points:
            assert point.row["trials"] == 20
            assert point.row["converged"] == 20
            assert "mean" in point.row

    def test_sweep_fused_reuses_supplied_runner(self):
        runner = SweepRunner(engine="fused")
        sweep_fused("seed", [1], lambda s: ring_point(seed=s), runner=runner)
        cached = runner._entry_for(RING5).engine
        sweep_fused("seed", [2], lambda s: ring_point(seed=s), runner=runner)
        assert runner._entry_for(RING5).engine is cached


class TestSamplesField:
    def test_samples_consistent_with_stats(self):
        (result,) = SweepRunner(engine="fused").run([ring_point(trials=30)])
        assert len(result.samples) == result.converged
        assert result.stats.mean == pytest.approx(
            float(np.mean(result.samples))
        )

    def test_legitimacy_dispatch_groups_share_predicates(self):
        """Points with equal EnabledCountLegitimacy share one dispatch
        group; a point with a decoding predicate gets its own — and both
        produce full convergence in one fused matrix."""
        leader = make_leader_tree_system(path(4))
        runner = SweepRunner(engine="fused")
        ring_a, ring_b = runner.run(
            [ring_point(seed=1, trials=20), ring_point(seed=2, trials=20)]
        )
        assert ring_a.censored == ring_b.censored == 0
        (decoded,) = runner.run(
            [
                SweepPointSpec(
                    system=leader,
                    sampler=CentralRandomizedSampler(),
                    legitimate=leader.is_terminal,
                    trials=20,
                    max_steps=20_000,
                    seed=3,
                )
            ]
        )
        assert decoded.censored == 0


class TestSignatureKeyedCache:
    """The per-system cache is keyed by content signature, never id.

    The old ``id(system)``-keyed dicts could hand a value-different
    system a stale kernel once the interpreter recycled a collected
    system's id — routine in a long-lived serving process with LRU
    eviction.  These tests pin the replacement contract: recycled ids
    recompile, evicted entries recompile, and value-equal systems built
    independently share one compilation.
    """

    def test_recycled_id_gets_fresh_compilation(self):
        """Build a system, prime the cache, let the system be collected,
        then build a *value-different* system whose instance reuses the
        freed id — it must get a fresh kernel, not the stale entry."""
        import copy

        template = make_token_ring_system(6)
        oracle = SweepRunner().run(
            [ring_point(system=copy.copy(template), seed=9, trials=10)]
        )
        runner = SweepRunner(cache_size=1)
        decoy = make_token_ring_system(4)
        for _ in range(50):
            stale = make_token_ring_system(5)
            runner.run([ring_point(system=stale, seed=3, trials=5)])
            stale_key = runner._cache_key(stale)
            # Evict the entry so its strong reference (the id-reuse
            # shield) is dropped and ``stale`` really can be collected.
            runner.run([ring_point(system=decoy, seed=4, trials=5)])
            assert stale_key not in runner._systems
            old_id = id(stale)
            del stale
            # CPython hands the freed slot to the next same-layout
            # allocation; copy.copy allocates the instance first.
            fresh = copy.copy(template)
            if id(fresh) != old_id:
                del fresh
                continue
            assert runner._cache_key(fresh) != stale_key
            results = runner.run(
                [ring_point(system=fresh, seed=9, trials=10)]
            )
            entry = runner._entry_for(fresh)
            assert entry.system is fresh
            assert entry.kernel is not None
            assert results[0].samples == oracle[0].samples
            return
        pytest.skip("allocator never recycled the system id in 50 tries")

    def test_lru_eviction_recompiles_correctly(self):
        runner = SweepRunner(cache_size=2)
        points = {
            n: ring_point(
                system=make_token_ring_system(n), seed=n, trials=10
            )
            for n in (4, 5, 6)
        }
        first = runner.run([points[4]])
        runner.run([points[5]])
        runner.run([points[6]])
        assert runner.cached_systems == 2
        assert runner.evictions == 1
        assert runner._cache_key(points[4].system) not in runner._systems
        # The evicted system recompiles into a fresh entry and still
        # reproduces its seeded stream exactly.
        again = runner.run([points[4]])
        assert again[0].samples == first[0].samples
        assert runner.evictions == 2  # size-2 cache dropped another
        assert runner.cache_info() == {
            "systems": 2,
            "cache_size": 2,
            "evictions": 2,
        }

    def test_cache_size_validation(self):
        with pytest.raises(MarkovError, match="cache_size"):
            SweepRunner(cache_size=0)
        unbounded = SweepRunner(cache_size=None)
        for n in (4, 5, 6):
            unbounded.run(
                [
                    ring_point(
                        system=make_token_ring_system(n), seed=n, trials=5
                    )
                ]
            )
        assert unbounded.cached_systems == 3
        assert unbounded.evictions == 0

    def test_value_equal_systems_share_entry_and_fuse(self):
        """Independently built equal systems (different tenants) map to
        one cache entry and fuse into one code matrix."""
        ring_a = make_token_ring_system(5)
        ring_b = make_token_ring_system(5)
        assert ring_a is not ring_b
        runner = SweepRunner(engine="fused")
        results = runner.run(
            [
                ring_point(system=ring_a, seed=1, trials=15),
                ring_point(system=ring_b, seed=2, trials=15),
            ]
        )
        assert runner.cached_systems == 1
        plan_a, plan_b = runner.last_plan
        assert plan_a.group == plan_b.group
        assert plan_a.fused_rows == plan_b.fused_rows == 30
        # Bit-identical to the same sweep on one shared system object.
        oracle = SweepRunner(engine="fused").run(
            [
                ring_point(system=ring_a, seed=1, trials=15),
                ring_point(system=ring_a, seed=2, trials=15),
            ]
        )
        assert [r.samples for r in results] == [
            r.samples for r in oracle
        ]
