"""Tests for the Section 4 coin-toss transformer (Lemmas 1-2, Thms 8-9)."""

import math

import numpy as np
import pytest

from repro.algorithms.herman_ring import HermanAlgorithm, make_herman_system
from repro.algorithms.leader_tree import TreeLeaderSpec, make_leader_tree_system
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.core.algorithm import Algorithm
from repro.core.system import System
from repro.core.variables import VariableLayout, VarSpec
from repro.core.actions import deterministic_action
from repro.errors import ModelError
from repro.graphs.generators import path
from repro.core.topology import Topology
from repro.markov.builder import build_chain
from repro.markov.hitting import absorption_probabilities, hitting_summary
from repro.schedulers.distributions import (
    DistributedRandomizedDistribution,
    SynchronousDistribution,
)
from repro.schedulers.relations import SynchronousRelation
from repro.stabilization.closure import check_strong_closure
from repro.stabilization.statespace import StateSpace
from repro.transformer.coin_toss import (
    COIN_VARIABLE,
    CoinTossTransform,
    TransformedSpec,
    lift_configuration,
    make_transformed_system,
    project_configuration,
)


class TestShape:
    def test_adds_coin_variable(self, two_process_system):
        transformed = make_transformed_system(two_process_system)
        assert COIN_VARIABLE in transformed.variable_names()
        assert transformed.num_configurations() == 4 * 4  # B doubles each

    def test_action_names_wrapped(self, two_process_system):
        transformed = make_transformed_system(two_process_system)
        assert [a.name for a in transformed.actions] == [
            "Trans(A1)",
            "Trans(A2)",
        ]

    def test_is_probabilistic(self, two_process_system):
        transformed = make_transformed_system(two_process_system)
        assert transformed.algorithm.is_probabilistic

    def test_guards_unchanged(self, two_process_system):
        """Trans(A)'s guard is the original guard (reads no coin)."""
        transformed = make_transformed_system(two_process_system)
        for base_config in two_process_system.all_configurations():
            lifted = lift_configuration(transformed, base_config, True)
            assert two_process_system.enabled_processes(
                base_config
            ) == transformed.enabled_processes(lifted)

    def test_rejects_coin_name_clash(self):
        class Clashing(Algorithm):
            name = "clash"

            def layout(self, topology, process):
                return VariableLayout((VarSpec(COIN_VARIABLE, (0, 1)),))

            def actions(self):
                return (
                    deterministic_action(
                        "A", lambda v: False, lambda v: None
                    ),
                )

        transformed = CoinTossTransform(Clashing())
        with pytest.raises(ModelError):
            System(transformed, Topology(path(2)))

    def test_constants_forwarded(self):
        base = make_token_ring_system(4)
        transformed = make_transformed_system(base)
        view = transformed.view(
            lift_configuration(
                transformed, next(base.all_configurations())
            ),
            0,
            writable=False,
        )
        assert view.const("modulus") == 3


class TestProjection:
    def test_project_lift_roundtrip(self, two_process_system):
        transformed = make_transformed_system(two_process_system)
        for base_config in two_process_system.all_configurations():
            for coin in (False, True):
                lifted = lift_configuration(transformed, base_config, coin)
                assert (
                    project_configuration(transformed, lifted)
                    == base_config
                )

    def test_outcomes_coin_semantics(self, two_process_system):
        """Winning branch: coin True + statement; losing: coin False."""
        transformed = make_transformed_system(two_process_system)
        base = ((False,), (False,))
        lifted = lift_configuration(transformed, base, False)
        branches = list(transformed.subset_branches(lifted, (0,)))
        assert len(branches) == 2
        outcomes = {b.target: b.probability for b in branches}
        # winner: p0 sets B=true and its coin records True
        win = (
            (True, True),
            (False, False),
        )
        lose = ((False, False), (False, False))
        assert math.isclose(outcomes[win], 0.5)
        assert math.isclose(outcomes[lose], 0.5)

    def test_transformed_spec_is_preimage(self, two_process_system):
        transformed = make_transformed_system(two_process_system)
        spec = TransformedSpec(BothTrueSpec(), two_process_system)
        for configuration in transformed.all_configurations():
            expected = BothTrueSpec().legitimate(
                two_process_system,
                project_configuration(transformed, configuration),
            )
            assert spec.legitimate(transformed, configuration) == expected


class TestLemma1Closure:
    @pytest.mark.parametrize(
        "maker,spec",
        [
            (make_two_process_system, BothTrueSpec()),
            (lambda: make_token_ring_system(4), TokenCirculationSpec()),
        ],
        ids=["alg3", "alg1-n4"],
    )
    def test_l_prob_closed_synchronously(self, maker, spec):
        base = maker()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(spec, base)
        space = StateSpace.explore(transformed, SynchronousRelation())
        legitimate = space.legitimate_mask(tspec.legitimate)
        assert check_strong_closure(space, legitimate) == []


class TestLemma2Correspondence:
    def test_transformed_mimics_base_step(self):
        """For any base step (subset S fires) there is a transformed
        branch where exactly S wins the toss and the projection matches."""
        base = make_token_ring_system(4)
        transformed = make_transformed_system(base)
        base_config = next(
            c
            for c in base.all_configurations()
            if len(base.enabled_processes(c)) >= 2
        )
        enabled = base.enabled_processes(base_config)
        subset = enabled[:2]
        (base_branch,) = base.subset_branches(base_config, subset)
        lifted = lift_configuration(transformed, base_config, False)
        projections = {
            project_configuration(transformed, branch.target)
            for branch in transformed.subset_branches(lifted, enabled)
        }
        assert base_branch.target in projections


class TestTheorems8And9:
    def test_synchronous_absorption_probability_one(self):
        base = make_leader_tree_system(path(3))
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(TreeLeaderSpec(), base)
        chain = build_chain(transformed, SynchronousDistribution())
        absorption = absorption_probabilities(
            chain, chain.mark(tspec.legitimate)
        )
        assert np.all(absorption > 1 - 1e-9)

    def test_distributed_randomized_absorption(self):
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(BothTrueSpec(), base)
        chain = build_chain(transformed, DistributedRandomizedDistribution())
        summary = hitting_summary(chain, chain.mark(tspec.legitimate))
        assert summary.converges_with_probability_one

    def test_transform_of_probabilistic_base(self):
        """The transformer composes with probabilistic bases (Herman)."""
        base = make_herman_system(3)
        transformed = make_transformed_system(base)
        lifted = lift_configuration(
            transformed, next(base.all_configurations()), False
        )
        branches = list(transformed.subset_branches(lifted, (0,)))
        # token action: 2 outcomes x 1/2 coin + 1 losing branch
        probabilities = sorted(b.probability for b in branches)
        assert probabilities == [0.25, 0.25, 0.5]

    def test_expected_rounds_match_hand_computation(self):
        """Hand-solved chain for trans(Algorithm 3) under the synchronous
        scheduler: t(F,F) = 8 and t(F,T) = t(T,F) = 10 rounds.

        Derivation: from (F,F) both processes toss (win prob ¼ each
        combination), so t(F,F) = 1 + ½·(2 + t(F,F)) + ¼·t(F,F) ⇒ 8;
        a mixed state first needs its lone enabled process to win a solo
        toss (2 expected rounds) to come back to (F,F).
        """
        base = make_two_process_system()
        transformed = make_transformed_system(base)
        tspec = TransformedSpec(BothTrueSpec(), base)
        chain = build_chain(transformed, SynchronousDistribution())
        from repro.markov.hitting import expected_hitting_times

        times = expected_hitting_times(chain, chain.mark(tspec.legitimate))
        tt = lift_configuration(transformed, ((True,), (True,)), False)
        assert times[chain.id_of(tt)] == 0.0
        ff = lift_configuration(transformed, ((False,), (False,)), False)
        assert math.isclose(times[chain.id_of(ff)], 8.0)
        ft = lift_configuration(transformed, ((False,), (True,)), False)
        assert math.isclose(times[chain.id_of(ft)], 10.0)
