"""Tests for the biased-coin transformer generalization and ABL1."""

import math

import pytest

from repro.algorithms.two_process import BothTrueSpec, make_two_process_system
from repro.algorithms.token_ring import (
    TokenCirculationSpec,
    make_token_ring_system,
)
from repro.errors import ModelError
from repro.experiments.abl1 import run_abl1
from repro.markov.builder import build_chain
from repro.markov.hitting import hitting_summary
from repro.markov.lumping import lumped_synchronous_transformed_chain
from repro.schedulers.distributions import SynchronousDistribution
from repro.transformer.coin_toss import (
    CoinTossTransform,
    TransformedSpec,
    lift_configuration,
    make_transformed_system,
)


class TestBiasedTransform:
    def test_bias_validation(self):
        base = make_two_process_system()
        with pytest.raises(ModelError):
            make_transformed_system(base, win_probability=0.0)
        with pytest.raises(ModelError):
            make_transformed_system(base, win_probability=1.0)

    def test_name_records_bias(self):
        base = make_two_process_system()
        transform = CoinTossTransform(base.algorithm, 0.7)
        assert "p=0.7" in transform.name
        assert transform.win_probability == 0.7
        fair = CoinTossTransform(base.algorithm)
        assert "p=" not in fair.name

    def test_outcome_probabilities_follow_bias(self):
        base = make_two_process_system()
        transformed = make_transformed_system(base, win_probability=0.25)
        lifted = lift_configuration(
            transformed, ((False,), (False,)), False
        )
        branches = sorted(
            b.probability
            for b in transformed.subset_branches(lifted, (0,))
        )
        assert branches == [0.25, 0.75]

    def test_biased_lumping_agreement(self):
        """Full biased transformed chain == biased Bernoulli lumping."""
        base = make_token_ring_system(4)
        spec = TokenCirculationSpec()
        for bias in (0.3, 0.7):
            transformed = make_transformed_system(base, bias)
            tspec = TransformedSpec(spec, base)
            full = build_chain(transformed, SynchronousDistribution())
            full_summary = hitting_summary(
                full, full.mark(tspec.legitimate)
            )
            lumped = lumped_synchronous_transformed_chain(
                base, win_probability=bias
            )
            lumped_summary = hitting_summary(
                lumped, lumped.mark(spec.legitimate)
            )
            assert math.isclose(
                full_summary.mean_expected_steps,
                lumped_summary.mean_expected_steps,
                rel_tol=1e-9,
            )

    def test_any_bias_converges(self):
        base = make_two_process_system()
        spec = BothTrueSpec()
        for bias in (0.05, 0.5, 0.95):
            lumped = lumped_synchronous_transformed_chain(
                base, win_probability=bias
            )
            summary = hitting_summary(lumped, lumped.mark(spec.legitimate))
            assert summary.converges_with_probability_one

    def test_alg3_faster_with_aggressive_coin(self):
        """Algorithm 3 needs joint wins: larger bias is strictly better."""
        base = make_two_process_system()
        spec = BothTrueSpec()
        means = {}
        for bias in (0.3, 0.6, 0.9):
            lumped = lumped_synchronous_transformed_chain(
                base, win_probability=bias
            )
            means[bias] = hitting_summary(
                lumped, lumped.mark(spec.legitimate)
            ).mean_expected_steps
        assert means[0.9] < means[0.6] < means[0.3]

    def test_symmetric_system_prefers_fair_coin(self):
        """K2 coloring's curve is symmetric in p ↔ 1-p with minimum ½."""
        from repro.algorithms.coloring import (
            ProperColoringSpec,
            make_coloring_system,
        )
        from repro.graphs.generators import complete

        base = make_coloring_system(complete(2))
        spec = ProperColoringSpec()

        def mean(bias):
            lumped = lumped_synchronous_transformed_chain(
                base, win_probability=bias
            )
            return hitting_summary(
                lumped, lumped.mark(spec.legitimate)
            ).mean_expected_steps

        assert math.isclose(mean(0.3), mean(0.7), rel_tol=1e-9)
        assert mean(0.5) < mean(0.3)


class TestAbl1Experiment:
    def test_runs_and_passes(self):
        result = run_abl1(biases=(0.25, 0.5, 0.75))
        assert result.passed
        assert len(result.rows) == 4

    def test_best_bias_reported(self):
        result = run_abl1(biases=(0.3, 0.5, 0.9))
        by_system = {row["system"]: row for row in result.rows}
        assert by_system["trans(Algorithm 3)"]["best p"] == 0.9
        assert by_system["trans(coloring, K2)"]["best p"] == 0.5
